// Package telemetry is PARD's visibility layer: a deterministic
// time-series registry that scrapes every control-plane statistics
// column (and registered gauges) on a sim-tick interval into
// fixed-capacity rings, plus a bounded audit journal of everything the
// control plane itself did — trigger firings and suppressions, policy
// loads, schedule installs, parameter writes. The data plane got a
// flight recorder in PR 3 (internal/trace); this package is the
// control-plane twin, and the export surfaces (Prometheus text format,
// JSON dumps, Perfetto counter tracks) hang off both.
//
// Nothing here mutates simulation state: scraping reads statistics
// tables and journal recording appends to telemetry-private buffers,
// so pard.StateDigest is byte-identical with telemetry on or off.
package telemetry

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Event kinds, the journal's taxonomy. One control-plane verb each.
const (
	KindTriggerFired     = "trigger_fired"
	KindTriggerSuppress  = "trigger_suppressed"
	KindPolicyLoad       = "policy_load"
	KindPolicyReload     = "policy_reload"
	KindPolicyUnload     = "policy_unload"
	KindSchedInstall     = "sched_install"
	KindSchedRestore     = "sched_restore"
	KindParamWrite       = "param_write"
)

// Event is one audit-journal entry. The numeric Old/New pair is
// kind-specific: for param_write it is the displaced and stored value;
// for trigger_suppressed Old is ticks since the binding last ran and
// New is the cooldown window that suppressed it.
type Event struct {
	Seq    uint64   `json:"seq"`
	When   sim.Tick `json:"when"`
	Kind   string   `json:"kind"`
	Origin string   `json:"origin"` // "console", "pardctl", "policy:<set>/<rule>", "firmware"
	Plane  string   `json:"plane,omitempty"`
	DS     core.DSID `json:"ds"`
	Name   string   `json:"name,omitempty"` // parameter / stat / policy-set / algorithm name
	Old    uint64   `json:"old,omitempty"`
	New    uint64   `json:"new,omitempty"`
	Detail string   `json:"detail,omitempty"`
}

// Journal is a bounded ring of control-plane events. A nil *Journal is
// a valid sink that drops everything, so hooks wire unconditionally.
type Journal struct {
	eng     *sim.Engine
	buf     []Event
	head    int // index of the oldest event
	n       int
	nextSeq uint64
	dropped uint64
}

// NewJournal returns a journal holding at most capacity events,
// stamping When from the engine clock at record time.
func NewJournal(eng *sim.Engine, capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{eng: eng, buf: make([]Event, capacity)}
}

// Record appends one event, stamping Seq and When. When full the
// oldest event is displaced and counted in Dropped.
func (j *Journal) Record(ev Event) {
	if j == nil {
		return
	}
	ev.Seq = j.nextSeq
	j.nextSeq++
	ev.When = j.eng.Now()
	if j.n < len(j.buf) {
		i := j.head + j.n
		if i >= len(j.buf) {
			i -= len(j.buf)
		}
		j.buf[i] = ev
		j.n++
		return
	}
	j.buf[j.head] = ev
	j.head++
	if j.head == len(j.buf) {
		j.head = 0
	}
	j.dropped++
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return j.n
}

// NextSeq returns the sequence number the next event will get (equal to
// the total number of events ever recorded).
func (j *Journal) NextSeq() uint64 {
	if j == nil {
		return 0
	}
	return j.nextSeq
}

// Dropped returns how many events have been displaced by the bound.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	return j.dropped
}

// At returns the i-th retained event, oldest first.
func (j *Journal) At(i int) Event {
	if i < 0 || i >= j.n {
		panic("telemetry: journal index out of range")
	}
	k := j.head + i
	if k >= len(j.buf) {
		k -= len(j.buf)
	}
	return j.buf[k]
}

// Since appends every retained event with Seq >= seq onto buf, oldest
// first, and returns the extended slice. Events older than seq that
// were displaced by the bound are simply absent — compare the first
// returned Seq against the request to detect truncation.
func (j *Journal) Since(seq uint64, buf []Event) []Event {
	if j == nil {
		return buf
	}
	for i := 0; i < j.n; i++ {
		ev := j.At(i)
		if ev.Seq >= seq {
			buf = append(buf, ev)
		}
	}
	return buf
}
