package telemetry

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/sim"
)

// Registry scrapes registered sources into fixed-capacity ring series
// on a sim-tick interval. Enumeration order is deterministic — sources
// in registration order, rows in sorted DS-id order, columns in table
// layout order — so a sequential run's exported series are
// byte-identical across repeats (the bit-reproducibility contract
// behind EXPERIMENTS.md, extended to telemetry).
//
// The steady-state scrape allocates nothing: rings are preallocated,
// row lists are cached against Table.Generation and only rebuilt when
// an LDom comes or goes. pardlint's hotalloc analyzer proves this from
// the scrape root; benchgate's telemetry_scrape section holds it
// dynamically.
type Registry struct {
	eng      *sim.Engine
	interval sim.Tick
	capacity int

	planes []*planeSource
	gauges []*gauge
	hooks  []func(now sim.Tick)

	series  []*metric.Ring // every ring, in creation order
	scrapes uint64
	started bool
}

// planeSource scrapes one control plane's statistics table plus any
// per-LDom gauge templates attached to it.
type planeSource struct {
	prefix string
	plane  *core.Plane
	synced bool
	gen    uint64 // stats-table generation the caches were built against

	rows  []core.DSID
	rings [][]*metric.Ring // parallel to rows, one ring per stat column
	byDS  map[core.DSID][]*metric.Ring
	tmpls []*gaugeTemplate
}

// gaugeTemplate is a per-LDom numeric gauge (e.g. a latency percentile
// read from the trace recorder) instantiated for every row the source
// currently has.
type gaugeTemplate struct {
	name   string
	read   func(core.DSID) float64
	byDS   map[core.DSID]*metric.Ring
	active []*metric.Ring // parallel to the source's rows
}

// gauge is a scalar source sampled once per scrape.
type gauge struct {
	ring *metric.Ring
	read func() float64
}

// NewRegistry returns a registry scraping every interval ticks into
// rings of the given sample capacity. Start must be called to begin
// scraping.
func NewRegistry(eng *sim.Engine, interval sim.Tick, capacity int) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	return &Registry{eng: eng, interval: interval, capacity: capacity}
}

// AddPlane registers a control plane's statistics table under a series
// prefix (conventionally the CPA mount name, "cpa0"). Every statistics
// column of every current and future row is scraped as
// "<prefix>.ds<id>.<column>".
func (r *Registry) AddPlane(prefix string, p *core.Plane) {
	r.planes = append(r.planes, &planeSource{
		prefix: prefix,
		plane:  p,
		byDS:   make(map[core.DSID][]*metric.Ring),
	})
}

// AddPlaneGauge attaches a per-LDom gauge to a previously added plane
// source: read is called for each DS-id the plane currently has a
// statistics row for, producing "<prefix>.ds<id>.<name>" series. It
// panics on an unknown prefix — wiring bugs must not fail silently.
func (r *Registry) AddPlaneGauge(prefix, name string, read func(core.DSID) float64) {
	for _, src := range r.planes {
		if src.prefix == prefix {
			src.tmpls = append(src.tmpls, &gaugeTemplate{
				name: name,
				read: read,
				byDS: make(map[core.DSID]*metric.Ring),
			})
			src.synced = false // force a resync to instantiate existing rows
			return
		}
	}
	panic("telemetry: AddPlaneGauge: no plane source " + prefix)
}

// AddGauge registers a scalar gauge sampled once per scrape and returns
// its ring.
func (r *Registry) AddGauge(name string, read func() float64) *metric.Ring {
	ring := metric.NewRing(name, r.capacity)
	r.gauges = append(r.gauges, &gauge{ring: ring, read: read})
	r.series = append(r.series, ring)
	return ring
}

// AddHook registers a function run after every scrape at the scrape's
// sim-time. The PRM's CSV monitor rides here (satellite of the scraper)
// so cat-style stat files and /metrics report identical values at
// identical sim-times.
func (r *Registry) AddHook(fn func(now sim.Tick)) {
	r.hooks = append(r.hooks, fn)
}

// Start schedules the first scrape one interval from now. It is a
// no-op when already started or when the interval is zero (telemetry
// disabled).
func (r *Registry) Start() {
	if r.started || r.interval <= 0 {
		return
	}
	r.started = true
	r.eng.ScheduleEventer(r.interval, r)
}

// RunEvent is the self-rescheduling scrape event.
func (r *Registry) RunEvent() {
	r.Scrape()
	r.eng.ScheduleEventer(r.interval, r)
}

// Scrape performs one scrape at the current sim-time: resync row caches
// if any table's row set changed, sample every source, then run the
// post-scrape hooks. Exported so benchgate can measure the steady state
// without driving the engine.
func (r *Registry) Scrape() {
	r.maybeResync()
	now := r.eng.Now()
	r.scrape(now)
	for _, h := range r.hooks {
		h(now)
	}
	r.scrapes++
}

// maybeResync rebuilds a source's row and ring caches only when its
// statistics table's generation moved — LDom create/destroy cadence,
// not scrape cadence.
func (r *Registry) maybeResync() {
	for _, src := range r.planes {
		g := src.plane.Stats().Generation()
		if src.synced && g == src.gen {
			continue
		}
		r.resync(src)
		src.gen = g
		src.synced = true
	}
}

// resync rebuilds one source's caches. Rings persist across resyncs —
// a destroyed LDom's series stops updating but keeps its history; a
// recreated DS-id resumes its old ring.
func (r *Registry) resync(src *planeSource) {
	src.rows = src.rows[:0]
	src.rows = src.plane.Stats().AppendRows(src.rows)
	cols := src.plane.Stats().Columns()
	src.rings = src.rings[:0]
	for _, t := range src.tmpls {
		t.active = t.active[:0]
	}
	for _, ds := range src.rows {
		rowRings, ok := src.byDS[ds]
		if !ok {
			//pardlint:ignore hotalloc first sight of a DS-id: resync runs on stat-table generation change (LDom create/destroy), not per scrape
			rowRings = make([]*metric.Ring, len(cols))
			for ci, c := range cols {
				//pardlint:ignore hotalloc first sight of a DS-id: one ring name per (DS-id, column), bounded by LDom count
				ring := metric.NewRing(fmt.Sprintf("%s.ds%d.%s", src.prefix, ds, c.Name), r.capacity)
				rowRings[ci] = ring
				r.series = append(r.series, ring)
			}
			src.byDS[ds] = rowRings
		}
		src.rings = append(src.rings, rowRings)
		for _, t := range src.tmpls {
			g, ok := t.byDS[ds]
			if !ok {
				//pardlint:ignore hotalloc first sight of a DS-id: one gauge ring per (DS-id, template), bounded by LDom count
				g = metric.NewRing(fmt.Sprintf("%s.ds%d.%s", src.prefix, ds, t.name), r.capacity)
				t.byDS[ds] = g
				r.series = append(r.series, g)
			}
			t.active = append(t.active, g)
		}
	}
}

// scrape samples every source at now. This is the telemetry hot path:
// with row caches in sync it performs table reads, gauge reads and ring
// writes only.
//
//pardlint:hotpath telemetry steady-state scrape: every stat column, per-LDom gauge and scalar gauge, zero allocation
func (r *Registry) scrape(now sim.Tick) {
	for _, src := range r.planes {
		st := src.plane.Stats()
		for ri, ds := range src.rows {
			rowRings := src.rings[ri]
			for ci := range rowRings {
				v, err := st.Get(ds, ci)
				if err != nil {
					continue
				}
				rowRings[ci].Record(now, float64(v))
			}
			for _, t := range src.tmpls {
				t.active[ri].Record(now, t.read(ds))
			}
		}
	}
	for _, g := range r.gauges {
		g.ring.Record(now, g.read())
	}
}

// Series returns every ring in creation order. The slice is the
// registry's own — callers must not mutate it.
func (r *Registry) Series() []*metric.Ring { return r.series }

// Find returns the ring with the given series name, or nil.
func (r *Registry) Find(name string) *metric.Ring {
	for _, s := range r.series {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// Scrapes returns how many scrapes have run.
func (r *Registry) Scrapes() uint64 { return r.scrapes }

// Interval returns the scrape interval in ticks.
func (r *Registry) Interval() sim.Tick { return r.interval }

// Capacity returns the per-series sample capacity.
func (r *Registry) Capacity() int { return r.capacity }

// Now returns the registry engine's current sim-time (export surfaces
// stamp documents with it).
func (r *Registry) Now() sim.Tick { return r.eng.Now() }
