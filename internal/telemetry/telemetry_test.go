package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func testPlane(e *sim.Engine) *core.Plane {
	params := core.NewTable(core.Column{Name: "waymask", Writable: true, Default: 0xFFFF})
	stats := core.NewTable(core.Column{Name: "miss_rate"}, core.Column{Name: "capacity"})
	return core.NewPlane(e, "CACHE_CP", 'C', params, stats, 8)
}

func TestRegistryScrapesPlaneRows(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e, 10, 16)
	p := testPlane(e)
	r.AddPlane("cpa0", p)

	p.Stats().EnsureRow(1)
	p.SetStat(1, "miss_rate", 300)
	r.Start()
	e.Run(10)

	ring := r.Find("cpa0.ds1.miss_rate")
	if ring == nil {
		t.Fatalf("series not created; have %d series", len(r.Series()))
	}
	last, ok := ring.Last()
	if !ok || last.Value != 300 || last.When != 10 {
		t.Fatalf("sample = %+v ok=%v, want value 300 at tick 10", last, ok)
	}

	// A row appearing later is picked up on the next scrape without
	// disturbing existing rings.
	p.Stats().EnsureRow(2)
	p.SetStat(2, "miss_rate", 50)
	e.Run(20)
	if r.Find("cpa0.ds2.miss_rate") == nil {
		t.Fatal("new row not resynced into a series")
	}
	if got := ring.Len(); got != 2 {
		t.Fatalf("ds1 ring has %d samples after 2 scrapes, want 2", got)
	}
}

func TestRegistryRingPersistsAcrossRowDelete(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e, 0, 16)
	p := testPlane(e)
	r.AddPlane("cpa0", p)
	p.Stats().EnsureRow(1)
	p.SetStat(1, "miss_rate", 7)
	r.Scrape()
	ring := r.Find("cpa0.ds1.miss_rate")
	if ring == nil || ring.Len() != 1 {
		t.Fatal("baseline scrape failed")
	}
	p.Stats().DeleteRow(1)
	r.Scrape() // resyncs; the dead row is no longer scraped
	if ring.Len() != 1 {
		t.Fatalf("destroyed LDom's ring grew to %d samples", ring.Len())
	}
	p.Stats().EnsureRow(1)
	p.SetStat(1, "miss_rate", 9)
	r.Scrape()
	if ring.Len() != 2 {
		t.Fatalf("recreated DS-id did not resume its ring (len %d)", ring.Len())
	}
}

func TestRegistryGaugesAndHooks(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e, 0, 8)
	v := 1.5
	ring := r.AddGauge("g", func() float64 { return v })
	var hookAt []sim.Tick
	r.AddHook(func(now sim.Tick) { hookAt = append(hookAt, now) })

	r.Scrape()
	v = 2.5
	r.Scrape()
	if ring.Len() != 2 || ring.At(1).Value != 2.5 {
		t.Fatalf("gauge samples wrong: len=%d", ring.Len())
	}
	if len(hookAt) != 2 {
		t.Fatalf("hooks ran %d times, want 2", len(hookAt))
	}
	if r.Scrapes() != 2 {
		t.Fatalf("Scrapes() = %d", r.Scrapes())
	}
}

func TestScrapeSteadyStateZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e, 0, 64)
	p := testPlane(e)
	r.AddPlane("cpa0", p)
	for ds := core.DSID(1); ds <= 4; ds++ {
		p.Stats().EnsureRow(ds)
	}
	r.AddGauge("g", func() float64 { return 1 })
	r.Scrape() // resync outside the measured window
	allocs := testing.AllocsPerRun(100, func() { r.Scrape() })
	if allocs != 0 {
		t.Fatalf("steady-state scrape allocates %.1f/op, want 0", allocs)
	}
}

func TestJournalBoundedOverwrite(t *testing.T) {
	e := sim.NewEngine()
	j := NewJournal(e, 4)
	for i := 0; i < 7; i++ {
		j.Record(Event{Kind: KindParamWrite, Origin: "t", New: uint64(i)})
	}
	if j.Len() != 4 || j.NextSeq() != 7 || j.Dropped() != 3 {
		t.Fatalf("len=%d nextSeq=%d dropped=%d, want 4/7/3", j.Len(), j.NextSeq(), j.Dropped())
	}
	if j.At(0).Seq != 3 || j.At(3).Seq != 6 {
		t.Fatalf("retained window [%d, %d], want [3, 6]", j.At(0).Seq, j.At(3).Seq)
	}
	got := j.Since(5, nil)
	if len(got) != 2 || got[0].Seq != 5 {
		t.Fatalf("Since(5) = %d events from %d", len(got), got[0].Seq)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(Event{Kind: KindTriggerFired}) // must not panic
}

func TestWritePrometheusFormat(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e, 5, 8)
	j := NewJournal(e, 8)
	p := testPlane(e)
	r.AddPlane("cpa0", p)
	p.Stats().EnsureRow(1)
	p.SetStat(1, "miss_rate", 42)
	r.Scrape()
	j.Record(Event{Kind: KindPolicyLoad, Origin: "console", Name: "x"})

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, j); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Text exposition lint: every non-comment line is `name{labels} value`
	// or `name value`, every metric family has HELP and TYPE.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("comment line is neither HELP nor TYPE: %q", line)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("sample line %q has no value", line)
		}
	}
	for _, want := range []string{
		`pard_series{name="cpa0.ds1.miss_rate"} 42`,
		"pard_scrapes_total 1",
		"pard_journal_events_total 1",
		"# TYPE pard_series gauge",
		"# TYPE pard_scrapes_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e, 5, 8)
	p := testPlane(e)
	r.AddPlane("cpa0", p)
	p.Stats().EnsureRow(1)
	p.SetStat(1, "miss_rate", 11)
	r.Scrape()

	var buf bytes.Buffer
	if err := WriteSeriesJSON(&buf, r, "cpa0."); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Scrapes uint64 `json:"scrapes"`
		Series  []struct {
			Name    string `json:"name"`
			Samples []struct {
				T sim.Tick `json:"t"`
				V float64  `json:"v"`
			} `json:"samples"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Schema != "pard-telemetry/v1" || doc.Scrapes != 1 {
		t.Fatalf("doc header %q/%d", doc.Schema, doc.Scrapes)
	}
	if len(doc.Series) != 2 { // miss_rate + capacity
		t.Fatalf("series count %d, want 2", len(doc.Series))
	}
	if doc.Series[0].Name != "cpa0.ds1.miss_rate" || doc.Series[0].Samples[0].V != 11 {
		t.Fatalf("series[0] = %+v", doc.Series[0])
	}
}

func TestJournalJSONTruncationMarker(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e, 5, 8)
	j := NewJournal(e, 2)
	for i := 0; i < 5; i++ {
		j.Record(Event{Kind: KindTriggerFired, Origin: "t"})
	}
	var buf bytes.Buffer
	if err := WriteJournalJSON(&buf, r, j, 0, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema    string  `json:"schema"`
		NextSeq   uint64  `json:"next_seq"`
		Dropped   uint64  `json:"dropped"`
		Truncated bool    `json:"truncated"`
		Events    []Event `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "pard-journal/v1" || !doc.Truncated || doc.Dropped != 3 {
		t.Fatalf("doc = %+v, want truncated with 3 dropped", doc)
	}
	if len(doc.Events) != 2 || doc.Events[0].Seq != 3 {
		t.Fatalf("events = %+v", doc.Events)
	}

	// A request starting inside the retained window is not truncated.
	buf.Reset()
	if err := WriteJournalJSON(&buf, r, j, doc.Events[0].Seq, 0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Truncated {
		t.Fatal("in-window request marked truncated")
	}
}

func TestTextViews(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e, 5, 8)
	j := NewJournal(e, 8)
	r.AddGauge("g", func() float64 { return 3 })
	r.Scrape()
	j.Record(Event{Kind: KindParamWrite, Origin: "console", Plane: "cpa0", Name: "waymask", Old: 1, New: 2})
	j.Record(Event{Kind: KindTriggerSuppress, Origin: "policy:p/r", Plane: "cpa0", Name: "miss_rate", Old: 3, New: 10, Detail: "suppressed: action a on cooldown"})

	top := TopText(r, "")
	if !strings.Contains(top, "g") || !strings.Contains(top, "1 series") {
		t.Fatalf("TopText:\n%s", top)
	}
	jt := JournalText(j, 0)
	if !strings.Contains(jt, "1->2") || !strings.Contains(jt, "since_last=3 cooldown=10") {
		t.Fatalf("JournalText:\n%s", jt)
	}
	sum := SummaryText(r, j)
	if !strings.Contains(sum, "2 retained of 2 recorded") {
		t.Fatalf("SummaryText:\n%s", sum)
	}
}
