package trace

import "sort"

// MergeTraces combines several recorders' archived traces — one
// recorder per rack server (or shard) — into a single deterministically
// ordered timeline: ascending issue time, then end time, then packet
// id, with argument order breaking residual ties (the sort is stable
// over the concatenation). Rack-level reporting and the sharded-rack
// equivalence suite flush per-server rings through here, so the merged
// view is identical however the servers were distributed over engines.
// Nil recorders are skipped.
func MergeTraces(recorders ...*Recorder) []PacketTrace {
	var out []PacketTrace
	for _, r := range recorders {
		out = append(out, r.Traces()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Issue != b.Issue {
			return a.Issue < b.Issue
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.ID < b.ID
	})
	return out
}
