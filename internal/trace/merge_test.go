package trace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// record runs one packet through a recorder with the given issue and
// finish times on the recorder's engine.
func record(e *sim.Engine, r *Recorder, hop int, p *core.Packet, enter, done sim.Tick) {
	e.At(enter, func() { r.Enter(hop, p) })
	e.At(done, func() { r.Finish(hop, p) })
}

func TestMergeTracesOrdersAcrossRecorders(t *testing.T) {
	// Two servers, each with its own engine, recorder and id source —
	// the sharded-rack shape. Packet ids collide across servers on
	// purpose: the merge must stay stable and ordered anyway.
	e0, e1 := sim.NewEngine(), sim.NewEngine()
	r0, r1 := NewRecorder(e0, 1), NewRecorder(e1, 1)
	ids0, ids1 := &core.IDSource{}, &core.IDSource{}
	h0 := r0.RegisterHop("nic")
	h1 := r1.RegisterHop("nic")

	// Server 0: packets issued at 10 and 30; server 1: at 20 and 30.
	a := core.NewPacket(ids0, core.KindDMAWrite, 1, 0, 64, 10)
	b := core.NewPacket(ids0, core.KindDMAWrite, 1, 0, 64, 30)
	c := core.NewPacket(ids1, core.KindDMAWrite, 2, 0, 64, 20)
	d := core.NewPacket(ids1, core.KindDMAWrite, 2, 0, 64, 30)
	record(e0, r0, h0, a, 10, 15)
	record(e0, r0, h0, b, 30, 35)
	record(e1, r1, h1, c, 20, 25)
	record(e1, r1, h1, d, 30, 35)
	e0.Run(100)
	e1.Run(100)

	merged := MergeTraces(r0, nil, r1)
	if len(merged) != 4 {
		t.Fatalf("merged %d traces, want 4", len(merged))
	}
	wantIssues := []sim.Tick{10, 20, 30, 30}
	for i, tr := range merged {
		if tr.Issue != wantIssues[i] {
			t.Fatalf("merged[%d].Issue = %v, want %v", i, tr.Issue, wantIssues[i])
		}
	}
	// The two 30-tick traces tie on (Issue, End, ID): recorder argument
	// order must break the tie, so server 0's comes first.
	if merged[2].DSID != 1 || merged[3].DSID != 2 {
		t.Fatalf("tie not broken by recorder order: ds %v then %v", merged[2].DSID, merged[3].DSID)
	}
}

func TestMergeTracesEmpty(t *testing.T) {
	if got := MergeTraces(); got != nil {
		t.Fatalf("MergeTraces() = %v, want nil", got)
	}
	if got := MergeTraces(nil, nil); got != nil {
		t.Fatalf("MergeTraces(nil, nil) = %v, want nil", got)
	}
}
