package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
)

// Perfetto / Chrome trace-event export (the JSON "traceEvents" format,
// loadable at ui.perfetto.dev or chrome://tracing). Layout:
//
//   - one process ("pard-icn"), one thread track per hop;
//   - per archived packet, one async nestable span ("b"/"e", cat
//     "packet", id = packet ID) covering issue→completion on the
//     issuing hop's track;
//   - per hop span, one complete event ("X") on that hop's track with
//     args carrying the DS-id and the queue/service split in ticks.
//
// Events are colored by DS-id from Chrome's reserved palette so two
// LDoms' packets are visually separable.

type perfettoEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	ID    string         `json:"id,omitempty"`
	Cname string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type perfettoDoc struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// CounterPoint is one sample on a Perfetto counter track.
type CounterPoint struct {
	Ts    sim.Tick
	Value float64
}

// CounterTrack is a named time series rendered as a Perfetto counter
// ("C" events) alongside the packet spans — the bridge from the
// telemetry registry's rings into the trace UI.
type CounterTrack struct {
	Name   string
	Points []CounterPoint
}

// dsPalette indexes Chrome's reserved color names by DS-id.
var dsPalette = [...]string{
	"good", "rail_response", "yellow", "rail_animation",
	"olive", "rail_idle", "terrible", "grey",
}

func dsColor(ds core.DSID) string { return dsPalette[int(ds)%len(dsPalette)] }

// us converts simulated ticks (1 tick = 1 ps) to trace-event
// microseconds.
func us(t sim.Tick) float64 { return float64(t) / 1e6 }

// WritePerfetto exports the archived traces as Chrome/Perfetto
// trace-event JSON and returns the number of packet traces written.
func (r *Recorder) WritePerfetto(w io.Writer) (int, error) {
	return r.WritePerfettoWith(w, nil)
}

// WritePerfettoWith is WritePerfetto plus counter tracks: each track
// renders as a "C" event series in a second process ("pard-telemetry"),
// so plane statistics scraped by the telemetry registry line up
// time-axis-aligned under the packet spans they explain.
func (r *Recorder) WritePerfettoWith(w io.Writer, counters []CounterTrack) (int, error) {
	if r == nil {
		return 0, fmt.Errorf("trace: recorder not enabled")
	}
	traces := r.Traces()
	events := make([]perfettoEvent, 0, 2+len(r.hops)+3*len(traces))
	events = append(events, perfettoEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "pard-icn"},
	})
	for i, h := range r.hops {
		events = append(events, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": h},
		})
	}
	for i := range traces {
		t := &traces[i]
		track := int(t.Src) + 1
		if t.Src < 0 && t.NHops > 0 {
			track = int(t.Hops[0].Hop) + 1
		}
		if track < 1 {
			track = 1
		}
		id := fmt.Sprintf("%#x", t.ID)
		name := fmt.Sprintf("%v %v", t.Kind, t.DSID)
		col := dsColor(t.DSID)
		ends := map[string]any{"dsid": uint16(t.DSID), "pkt": t.ID}
		events = append(events, perfettoEvent{
			Name: name, Cat: "packet", Ph: "b", Pid: 1, Tid: track,
			Ts: us(t.Issue), ID: id, Cname: col,
			Args: map[string]any{
				"dsid": uint16(t.DSID), "pkt": t.ID,
				"kind": t.Kind.String(), "addr": t.Addr, "size": t.Size,
			},
		})
		for _, s := range t.Spans() {
			events = append(events, perfettoEvent{
				Name: r.HopName(int(s.Hop)), Cat: "hop", Ph: "X",
				Pid: 1, Tid: int(s.Hop) + 1,
				Ts: us(s.Enter), Dur: us(s.Done - s.Enter), Cname: col,
				Args: map[string]any{
					"dsid":       uint16(t.DSID),
					"pkt":        t.ID,
					"queue_ps":   uint64(s.QueueWait()),
					"service_ps": uint64(s.ServiceTime()),
				},
			})
		}
		events = append(events, perfettoEvent{
			Name: name, Cat: "packet", Ph: "e", Pid: 1, Tid: track,
			Ts: us(t.End), ID: id, Cname: col, Args: ends,
		})
	}
	if len(counters) > 0 {
		events = append(events, perfettoEvent{
			Name: "process_name", Ph: "M", Pid: 2,
			Args: map[string]any{"name": "pard-telemetry"},
		})
		for _, ct := range counters {
			for _, pt := range ct.Points {
				events = append(events, perfettoEvent{
					Name: ct.Name, Cat: "telemetry", Ph: "C", Pid: 2,
					Ts: us(pt.Ts), Args: map[string]any{"value": pt.Value},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(perfettoDoc{TraceEvents: events, DisplayTimeUnit: "ns"}); err != nil {
		return 0, err
	}
	return len(traces), nil
}
