package trace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// nopTarget absorbs packets without allocating, so AllocsPerRun below
// measures the probe alone.
type nopTarget struct{}

func (nopTarget) Request(*core.Packet) {}

// After Prealloc the steady-state Request path (counter update + ring
// record of an in-range DS-id) must not allocate.
func TestProbePreallocZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	p := NewProbe("mem", e, nopTarget{}, 8)
	p.Prealloc(3)
	ids := &core.IDSource{}
	pkt := core.NewPacket(ids, core.KindMemRead, 2, 0x40, 64, 0)
	if avg := testing.AllocsPerRun(1000, func() { p.Request(pkt) }); avg != 0 {
		t.Fatalf("preallocated probe Request: %v allocs/op", avg)
	}
	if p.Count(core.KindMemRead, 2) < 1000 {
		t.Fatalf("dense path lost counts: %d", p.Count(core.KindMemRead, 2))
	}
}

// Dense rows and the map spill path must agree: counts, bytes, per-DSID
// sums and the Summary rendering see one unified view, and a late
// Prealloc migrates map entries without double counting.
func TestProbeDenseMapEquivalence(t *testing.T) {
	e := sim.NewEngine()
	p := NewProbe("mem", e, nopTarget{}, 0)
	ids := &core.IDSource{}
	observe(p, ids, core.KindMemRead, 1, 5) // map path (no prealloc yet)
	observe(p, ids, core.KindWriteback, 6, 2)

	p.Prealloc(3)                           // migrates ds1 into dense; ds6 stays in the map
	observe(p, ids, core.KindMemRead, 1, 4) // dense path
	observe(p, ids, core.KindWriteback, 6, 1)

	if got := p.Count(core.KindMemRead, 1); got != 9 {
		t.Fatalf("Count(read, ds1) = %d, want 9 (migration double count?)", got)
	}
	if got := p.Bytes(core.KindMemRead, 1); got != 9*64 {
		t.Fatalf("Bytes(read, ds1) = %d", got)
	}
	if got := p.Count(core.KindWriteback, 6); got != 3 {
		t.Fatalf("Count(wb, ds6) = %d, want 3", got)
	}
	if p.CountByDSID(1) != 9 || p.CountByDSID(6) != 3 {
		t.Fatalf("CountByDSID = %d/%d", p.CountByDSID(1), p.CountByDSID(6))
	}
	if p.Total() != 12 {
		t.Fatalf("Total = %d", p.Total())
	}
	p.Reset()
	if p.Total() != 0 || p.Count(core.KindMemRead, 1) != 0 || p.Count(core.KindWriteback, 6) != 0 {
		t.Fatal("Reset left dense or map counters behind")
	}
	observe(p, ids, core.KindMemRead, 1, 2)
	if p.Count(core.KindMemRead, 1) != 2 {
		t.Fatal("dense rows unusable after Reset")
	}
}

// A ring Record is a value snapshot: recycling the pooled packet that
// produced it must not rewrite history. Run both ID-source modes — the
// pooled one actually reuses the struct, the unpooled one guards the
// same property when the allocator happens to reuse memory.
func TestProbeRecordSurvivesPacketRecycle(t *testing.T) {
	for _, pooled := range []bool{true, false} {
		name := "unpooled"
		if pooled {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			e := sim.NewEngine()
			ids := &core.IDSource{}
			if pooled {
				ids.EnablePool()
			}
			p := NewProbe("mem", e, nopTarget{}, 4)
			pkt := core.NewPacket(ids, core.KindMemRead, 3, 0x1000, 64, e.Now())
			firstID := pkt.ID
			p.Request(pkt)
			pkt.Complete(e.Now())

			// With the pool on, this hands the same struct back with new
			// identity fields.
			next := core.NewPacket(ids, core.KindPIOWrite, 9, 0xdead, 4096, e.Now())
			if pooled && next != pkt {
				t.Fatal("pool did not recycle the packet struct (test premise)")
			}
			p.Request(next)

			recent := p.Recent()
			if len(recent) != 2 {
				t.Fatalf("ring holds %d records", len(recent))
			}
			r := recent[0]
			if r.ID != firstID || r.DSID != 3 || r.Addr != 0x1000 || r.Size != 64 || r.Kind != core.KindMemRead {
				t.Fatalf("first record corrupted by recycle: %+v", r)
			}
		})
	}
}
