package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/sim"
)

// The Probe (trace.go) counts packets at one observation point. The
// Recorder below is the ICN flight recorder: it follows sampled packets
// across every instrumented hop (cores, caches, crossbar, memory
// controller, I/O bridge and devices), splitting each hop's residency
// into queue wait and service time, and aggregating the splits into
// per-(hop, DS-id) latency histograms. It answers the question the
// control-plane counters cannot: where a given LDom's latency went.
//
// Contract with the instrumented components:
//
//   - Begin(hop, p): p was just issued by hop (a request source).
//   - Enter(hop, p): p arrived at hop; a span opens with service
//     provisionally starting now.
//   - Service(hop, p): hop started actively serving p (queue wait over).
//     Optional: without it the hop reports zero queue wait.
//   - Leave(hop, p): p departs hop toward another component.
//   - Finish(hop, p): hop completes p. MUST run before p.Complete: a
//     pooled packet is recycled the moment Complete returns, and the
//     recorder snapshots the packet's identity fields by value.
//
// Every method is safe on a nil *Recorder and on unsampled packets, so
// call sites are unconditional; the disabled path is a nil check and a
// mask test, allocation-free (TestRecorderNilZeroAlloc).

// MaxHopsPerPacket bounds the per-packet span array. A fixed array keeps
// PacketTrace a flat value type — snapshotting one is a plain copy, so a
// recycled pooled packet can never corrupt an archived trace.
const MaxHopsPerPacket = 8

// DefaultSpanCapacity bounds the completed-trace ring. Older traces are
// overwritten first (flight-recorder semantics: recent history wins);
// histograms keep aggregating regardless.
const DefaultSpanCapacity = 16384

// HopSpan is one packet's residency at one hop.
type HopSpan struct {
	Hop     int32
	Enter   sim.Tick // arrival at the hop
	Service sim.Tick // queue wait ends, active service begins
	Done    sim.Tick // departure or completion
}

// QueueWait is the time spent waiting before service at this hop.
func (s HopSpan) QueueWait() sim.Tick { return s.Service - s.Enter }

// ServiceTime is the time spent being actively served at this hop.
func (s HopSpan) ServiceTime() sim.Tick { return s.Done - s.Service }

// PacketTrace is one sampled packet's life, decomposed into hop spans.
// It is a flat value type: archiving one is a value copy, immune to the
// packet pool recycling the *core.Packet it was captured from.
type PacketTrace struct {
	ID    uint64
	Kind  core.Kind
	DSID  core.DSID
	Addr  uint64
	Size  uint32
	Src   int32 // issuing hop (Begin); -1 when first seen mid-flight
	Issue sim.Tick
	End   sim.Tick
	NHops int
	// Truncated marks a packet that crossed more than MaxHopsPerPacket
	// hops; the overflow spans were dropped (and counted by the recorder).
	Truncated bool
	Hops      [MaxHopsPerPacket]HopSpan

	open bool // the last span has not been closed yet
}

// Spans returns the recorded hop spans in traversal order.
func (t *PacketTrace) Spans() []HopSpan { return t.Hops[:t.NHops] }

type histKey struct {
	hop int32
	ds  core.DSID
}

type hopHist struct {
	queue   *metric.Histogram
	service *metric.Histogram
}

// Recorder is the flight recorder. Construct with NewRecorder and attach
// to components before traffic; a nil *Recorder is the disabled state.
type Recorder struct {
	engine *sim.Engine
	mask   uint64 // sample when ID&mask == 0
	hops   []string

	active map[uint64]*PacketTrace
	pool   []*PacketTrace

	spans   []PacketTrace // completed traces, bounded ring
	spanCap int
	spanPos int

	hists map[histKey]*hopHist

	finished uint64 // traces finalized (including ones the ring evicted)
	dropped  uint64 // hop spans dropped by the MaxHopsPerPacket bound
}

// NewRecorder builds a recorder sampling one packet in sampleEvery by
// packet ID. sampleEvery is rounded up to a power of two so the sample
// test is a single mask; 0 or 1 samples everything.
func NewRecorder(e *sim.Engine, sampleEvery uint64) *Recorder {
	n := uint64(1)
	for n < sampleEvery {
		n <<= 1
	}
	return &Recorder{
		engine:  e,
		mask:    n - 1,
		active:  make(map[uint64]*PacketTrace),
		hists:   make(map[histKey]*hopHist),
		spanCap: DefaultSpanCapacity,
	}
}

// SampleEvery returns the effective (power-of-two) sampling divisor.
func (r *Recorder) SampleEvery() uint64 { return r.mask + 1 }

// SetSpanCapacity resizes the completed-trace ring (0 keeps histograms
// only). Call before traffic.
func (r *Recorder) SetSpanCapacity(n int) {
	r.spanCap = n
	r.spans = nil
	r.spanPos = 0
}

// RegisterHop names a hop and returns its id, reusing the id of an
// already-registered name.
func (r *Recorder) RegisterHop(name string) int {
	for i, h := range r.hops {
		if h == name {
			return i
		}
	}
	r.hops = append(r.hops, name)
	return len(r.hops) - 1
}

// HopName returns the name hop registered under.
func (r *Recorder) HopName(hop int) string {
	if hop < 0 || hop >= len(r.hops) {
		return fmt.Sprintf("hop%d", hop)
	}
	return r.hops[hop]
}

// Hops returns the registered hop names in id order.
func (r *Recorder) Hops() []string { return append([]string(nil), r.hops...) }

// Sampled reports whether p is in the sample.
func (r *Recorder) Sampled(p *core.Packet) bool {
	return r != nil && p.ID&r.mask == 0
}

// state returns p's in-flight trace, creating it on first sight.
func (r *Recorder) state(p *core.Packet) *PacketTrace {
	if t, ok := r.active[p.ID]; ok {
		return t
	}
	var t *PacketTrace
	if n := len(r.pool); n > 0 {
		t = r.pool[n-1]
		r.pool[n-1] = nil
		r.pool = r.pool[:n-1]
	} else {
		//pardlint:ignore hotalloc pool miss: amortized to zero once the trace pool reaches steady-state depth
		t = new(PacketTrace)
	}
	*t = PacketTrace{
		ID: p.ID, Kind: p.Kind, DSID: p.DSID, Addr: p.Addr, Size: p.Size,
		Src: -1, Issue: p.Issue,
	}
	r.active[p.ID] = t
	return t
}

// Begin marks hop as p's issuing source. Call where the packet is
// created, before the first Enter.
func (r *Recorder) Begin(hop int, p *core.Packet) {
	if r == nil || p.ID&r.mask != 0 {
		return
	}
	r.state(p).Src = int32(hop)
}

// Enter opens a hop span: p arrived at hop now. Service provisionally
// starts now too, so a hop that never calls Service reports pure
// service time.
func (r *Recorder) Enter(hop int, p *core.Packet) {
	if r == nil || p.ID&r.mask != 0 {
		return
	}
	t := r.state(p)
	now := r.engine.Now()
	if t.open {
		// Defensive: the previous hop never closed its span (an
		// uninstrumented exit path). Close it now so the invariant
		// "only the last span can be open" holds.
		s := &t.Hops[t.NHops-1]
		s.Done = now
		r.observe(s, t.DSID)
		t.open = false
	}
	if t.NHops >= MaxHopsPerPacket {
		t.Truncated = true
		r.dropped++
		return
	}
	t.Hops[t.NHops] = HopSpan{Hop: int32(hop), Enter: now, Service: now}
	t.NHops++
	t.open = true
}

// last returns p's trace and its open span iff that span belongs to hop.
func (r *Recorder) last(p *core.Packet, hop int) (*PacketTrace, *HopSpan) {
	t, ok := r.active[p.ID]
	if !ok {
		return nil, nil
	}
	if !t.open || t.NHops == 0 {
		return t, nil
	}
	s := &t.Hops[t.NHops-1]
	if s.Hop != int32(hop) {
		return t, nil
	}
	return t, s
}

// Service marks the end of p's queue wait at hop: active service starts
// now. Calling it again overwrites (the last dispatch wins, matching a
// retried access).
func (r *Recorder) Service(hop int, p *core.Packet) {
	if r == nil || p.ID&r.mask != 0 {
		return
	}
	if _, s := r.last(p, hop); s != nil {
		s.Service = r.engine.Now()
	}
}

// Leave closes p's span at hop: the packet departs toward another
// component. The span's queue/service split feeds the histograms.
func (r *Recorder) Leave(hop int, p *core.Packet) {
	if r == nil || p.ID&r.mask != 0 {
		return
	}
	t, s := r.last(p, hop)
	if s == nil {
		return
	}
	s.Done = r.engine.Now()
	r.observe(s, t.DSID)
	t.open = false
}

// Finish closes p's span at hop (if open) and finalizes the trace: the
// packet's life ends here. It MUST run before p.Complete so the capture
// happens while the packet's fields are still this request's.
func (r *Recorder) Finish(hop int, p *core.Packet) {
	if r == nil || p.ID&r.mask != 0 {
		return
	}
	t, s := r.last(p, hop)
	if t == nil {
		return
	}
	now := r.engine.Now()
	if s != nil {
		s.Done = now
		r.observe(s, t.DSID)
		t.open = false
	}
	t.End = now
	r.finished++
	if r.spanCap > 0 {
		// Archive by value: the active struct goes back to the pool and
		// the packet may be recycled, but the ring entry is a copy.
		if len(r.spans) < r.spanCap {
			r.spans = append(r.spans, *t)
		} else {
			r.spans[r.spanPos] = *t
			r.spanPos = (r.spanPos + 1) % r.spanCap
		}
	}
	delete(r.active, p.ID)
	r.pool = append(r.pool, t)
}

func (r *Recorder) observe(s *HopSpan, ds core.DSID) {
	k := histKey{hop: s.Hop, ds: ds}
	h, ok := r.hists[k]
	if !ok {
		//pardlint:ignore hotalloc first sight of a (hop, DS-id) pair: bounded by topology times LDom count
		h = &hopHist{queue: metric.NewHistogram(), service: metric.NewHistogram()}
		r.hists[k] = h
	}
	h.queue.Observe(uint64(s.Service - s.Enter))
	h.service.Observe(uint64(s.Done - s.Service))
}

// Finished returns the number of finalized traces.
func (r *Recorder) Finished() uint64 {
	if r == nil {
		return 0
	}
	return r.finished
}

// DroppedSpans returns hop spans dropped by the per-packet bound.
func (r *Recorder) DroppedSpans() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// ActiveCount returns in-flight sampled packets (for tests).
func (r *Recorder) ActiveCount() int {
	if r == nil {
		return 0
	}
	return len(r.active)
}

// Traces returns the archived completed traces, oldest first.
func (r *Recorder) Traces() []PacketTrace {
	if r == nil {
		return nil
	}
	if len(r.spans) < r.spanCap {
		return append([]PacketTrace(nil), r.spans...)
	}
	out := make([]PacketTrace, 0, r.spanCap)
	out = append(out, r.spans[r.spanPos:]...)
	out = append(out, r.spans[:r.spanPos]...)
	return out
}

// SpanCount returns the number of closed spans observed for (hop, ds).
func (r *Recorder) SpanCount(hop int, ds core.DSID) uint64 {
	if r == nil {
		return 0
	}
	if h, ok := r.hists[histKey{hop: int32(hop), ds: ds}]; ok {
		return h.queue.Count()
	}
	return 0
}

// Percentile returns the q-quantile of (hop, ds)'s service-time (service
// true) or queue-wait (service false) distribution, in ticks. The PRM's
// lat_{p50,p99}_{queue,service} statistics files read through here.
func (r *Recorder) Percentile(hop int, ds core.DSID, service bool, q float64) uint64 {
	if r == nil {
		return 0
	}
	h, ok := r.hists[histKey{hop: int32(hop), ds: ds}]
	if !ok {
		return 0
	}
	if service {
		return h.service.Percentile(q)
	}
	return h.queue.Percentile(q)
}

// Reset drops accumulated traces and histograms (warm-up/measure splits).
// In-flight packets keep recording.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	r.spanPos = 0
	r.hists = make(map[histKey]*hopHist)
	r.finished = 0
	r.dropped = 0
}

// BreakdownTable renders the per-(hop, DS-id) latency decomposition —
// the console `trace` command's output.
func (r *Recorder) BreakdownTable() string {
	if r == nil {
		return ""
	}
	keys := make([]histKey, 0, len(r.hists))
	for k := range r.hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].hop != keys[j].hop {
			return keys[i].hop < keys[j].hop
		}
		return keys[i].ds < keys[j].ds
	})
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: sampling 1-in-%d, %d packets finished, %d in flight, %d spans dropped\n",
		r.SampleEvery(), r.finished, len(r.active), r.dropped)
	fmt.Fprintf(&b, "  %-10s %-6s %8s %12s %12s %12s %12s\n",
		"hop", "ds", "spans", "queue-p50", "queue-p99", "svc-p50", "svc-p99")
	for _, k := range keys {
		h := r.hists[k]
		fmt.Fprintf(&b, "  %-10s %-6v %8d %12s %12s %12s %12s\n",
			r.HopName(int(k.hop)), k.ds, h.queue.Count(),
			fmtTicks(h.queue.Percentile(0.50)), fmtTicks(h.queue.Percentile(0.99)),
			fmtTicks(h.service.Percentile(0.50)), fmtTicks(h.service.Percentile(0.99)))
	}
	return b.String()
}

// fmtTicks renders a tick count (1 tick = 1 ps) as nanoseconds.
func fmtTicks(v uint64) string {
	return fmt.Sprintf("%.1fns", float64(v)/1000)
}
