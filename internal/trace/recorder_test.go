package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// The disabled recorder (nil receiver) and the unsampled fast path must
// both be allocation-free: every hop calls these hooks unconditionally.
func TestRecorderDisabledZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	ids := &core.IDSource{}
	p := core.NewPacket(ids, core.KindMemRead, 1, 0x40, 64, 0)

	var nilRec *Recorder
	if avg := testing.AllocsPerRun(500, func() {
		nilRec.Begin(0, p)
		nilRec.Enter(0, p)
		nilRec.Service(0, p)
		nilRec.Leave(0, p)
		nilRec.Finish(0, p)
	}); avg != 0 {
		t.Fatalf("nil recorder: %v allocs/op", avg)
	}

	r := NewRecorder(e, 64)
	hop := r.RegisterHop("dev")
	// Make p unsampled: the ID source above issued ID 1 (1 & 63 != 0).
	if r.Sampled(p) {
		t.Fatalf("packet %d unexpectedly sampled at 1-in-64", p.ID)
	}
	if avg := testing.AllocsPerRun(500, func() {
		r.Begin(hop, p)
		r.Enter(hop, p)
		r.Service(hop, p)
		r.Leave(hop, p)
		r.Finish(hop, p)
	}); avg != 0 {
		t.Fatalf("unsampled packet: %v allocs/op", avg)
	}
	if r.Finished() != 0 || r.ActiveCount() != 0 {
		t.Fatal("unsampled packet left recorder state behind")
	}
}

func TestRecorderSamplingMask(t *testing.T) {
	e := sim.NewEngine()
	ids := &core.IDSource{}
	r := NewRecorder(e, 3) // rounds up to 4
	if r.SampleEvery() != 4 {
		t.Fatalf("SampleEvery = %d, want 4", r.SampleEvery())
	}
	hop := r.RegisterHop("dev")
	for i := 0; i < 8; i++ {
		p := core.NewPacket(ids, core.KindMemRead, 1, uint64(i)*64, 64, e.Now())
		r.Enter(hop, p)
		r.Finish(hop, p)
		p.Complete(e.Now())
	}
	// IDs 1..8 were issued; 4 and 8 are the multiples of 4.
	if r.Finished() != 2 {
		t.Fatalf("finished = %d, want 2 of 8 at 1-in-4", r.Finished())
	}
	if r.ActiveCount() != 0 {
		t.Fatalf("active = %d after all completions", r.ActiveCount())
	}
}

// A packet crossing two hops decomposes exactly: per-hop queue/service
// splits, contiguous spans, and the hop sums equal end-to-end latency.
func TestRecorderSpanDecomposition(t *testing.T) {
	e := sim.NewEngine()
	ids := &core.IDSource{}
	r := NewRecorder(e, 1)
	src := r.RegisterHop("cpu0")
	hopA := r.RegisterHop("xbar")
	hopB := r.RegisterHop("mem")

	p := core.NewPacket(ids, core.KindMemRead, 2, 0x1000, 64, e.Now())
	r.Begin(src, p)
	r.Enter(hopA, p) // t=0
	e.Run(300)
	r.Service(hopA, p) // 300 queued
	e.Run(500)
	r.Leave(hopA, p) // 200 service
	r.Enter(hopB, p) // same tick: contiguous hand-off
	e.Run(1500)
	r.Finish(hopB, p) // 1000 service, no Service call -> 0 queue
	end := e.Now()
	p.Complete(end)

	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if tr.Src != int32(src) || tr.DSID != 2 || tr.Kind != core.KindMemRead {
		t.Fatalf("identity: src=%d ds=%v kind=%v", tr.Src, tr.DSID, tr.Kind)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	a, b := spans[0], spans[1]
	if a.Hop != int32(hopA) || a.Enter != 0 || a.Service != 300 || a.Done != 500 {
		t.Fatalf("hopA span = %+v", a)
	}
	if a.QueueWait() != 300 || a.ServiceTime() != 200 {
		t.Fatalf("hopA split = %v/%v", a.QueueWait(), a.ServiceTime())
	}
	if b.Hop != int32(hopB) || b.Enter != a.Done || b.QueueWait() != 0 || b.ServiceTime() != 1000 {
		t.Fatalf("hopB span = %+v", b)
	}
	var sum sim.Tick
	for _, s := range spans {
		sum += s.Done - s.Enter
	}
	if sum != tr.End-tr.Issue || tr.End != end {
		t.Fatalf("hop sum %v != end-to-end %v", sum, tr.End-tr.Issue)
	}

	if n := r.SpanCount(hopA, 2); n != 1 {
		t.Fatalf("hopA span count = %d", n)
	}
	if q := r.Percentile(hopA, 2, false, 0.5); q == 0 || q > 300 {
		t.Fatalf("hopA queue p50 = %d, want (0, 300]", q)
	}
	if s := r.Percentile(hopB, 2, true, 0.99); s == 0 || s > 1000 {
		t.Fatalf("hopB service p99 = %d, want (0, 1000]", s)
	}
	if r.Percentile(hopB, 7, true, 0.5) != 0 {
		t.Fatal("unknown DS-id should read 0")
	}

	table := r.BreakdownTable()
	for _, want := range []string{"xbar", "mem", "ds2", "1-in-1"} {
		if !strings.Contains(table, want) {
			t.Fatalf("breakdown table missing %q:\n%s", want, table)
		}
	}
}

// The completed-trace ring is bounded and keeps the most recent traces.
func TestRecorderRingBounded(t *testing.T) {
	e := sim.NewEngine()
	ids := &core.IDSource{}
	r := NewRecorder(e, 1)
	r.SetSpanCapacity(4)
	hop := r.RegisterHop("dev")
	var lastIDs []uint64
	for i := 0; i < 6; i++ {
		p := core.NewPacket(ids, core.KindMemRead, 1, 0, 64, e.Now())
		r.Enter(hop, p)
		r.Finish(hop, p)
		p.Complete(e.Now())
		if i >= 2 {
			lastIDs = append(lastIDs, p.ID)
		}
	}
	traces := r.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring length = %d, want 4", len(traces))
	}
	for i, tr := range traces {
		if tr.ID != lastIDs[i] {
			t.Fatalf("ring[%d].ID = %d, want %d (oldest-first recency)", i, tr.ID, lastIDs[i])
		}
	}
	if r.Finished() != 6 {
		t.Fatalf("finished = %d (ring eviction must not undercount)", r.Finished())
	}
}

// An archived trace is a value copy: recycling the pooled packet that
// produced it (and reusing its PacketTrace struct) cannot corrupt it.
func TestRecorderArchiveSurvivesPacketRecycle(t *testing.T) {
	e := sim.NewEngine()
	ids := &core.IDSource{}
	ids.EnablePool()
	r := NewRecorder(e, 1)
	hop := r.RegisterHop("dev")

	p := core.NewPacket(ids, core.KindMemRead, 3, 0x1000, 64, e.Now())
	firstID := p.ID
	r.Enter(hop, p)
	e.Run(700)
	r.Finish(hop, p)
	p.Complete(e.Now())

	// The pool hands the same struct back; the recorder also reuses its
	// pooled PacketTrace for the new flight.
	q := core.NewPacket(ids, core.KindPIOWrite, 9, 0xdead, 4096, e.Now())
	if q != p {
		t.Fatal("pool did not recycle the packet struct (test premise)")
	}
	r.Enter(hop, q)
	e.Run(900)

	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if tr.ID != firstID || tr.DSID != 3 || tr.Addr != 0x1000 || tr.Kind != core.KindMemRead {
		t.Fatalf("archived trace corrupted by recycle: %+v", tr)
	}
	if tr.End != 700 || tr.NHops != 1 || tr.Hops[0].Done != 700 {
		t.Fatalf("archived span corrupted: %+v", tr)
	}
}

// More hops than MaxHopsPerPacket: overflow spans drop, the trace is
// marked, nothing leaks.
func TestRecorderHopTruncation(t *testing.T) {
	e := sim.NewEngine()
	ids := &core.IDSource{}
	r := NewRecorder(e, 1)
	hops := []int{r.RegisterHop("a"), r.RegisterHop("b")}
	p := core.NewPacket(ids, core.KindMemRead, 1, 0, 64, e.Now())
	for i := 0; i < MaxHopsPerPacket+2; i++ {
		r.Enter(hops[i%2], p)
		e.Run(e.Now() + 10)
	}
	r.Finish(hops[0], p)
	p.Complete(e.Now())

	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if !tr.Truncated || tr.NHops != MaxHopsPerPacket {
		t.Fatalf("truncated=%v nhops=%d", tr.Truncated, tr.NHops)
	}
	if r.DroppedSpans() != 2 {
		t.Fatalf("dropped = %d, want 2", r.DroppedSpans())
	}
	if r.ActiveCount() != 0 {
		t.Fatal("truncated trace leaked active state")
	}
}

// WritePerfetto: parseable JSON, metadata per hop, b/X/e per trace,
// DS-id on every non-metadata event, X spans inside the b/e window.
func TestWritePerfettoStructure(t *testing.T) {
	e := sim.NewEngine()
	ids := &core.IDSource{}
	r := NewRecorder(e, 1)
	src := r.RegisterHop("cpu0")
	dev := r.RegisterHop("dev")
	for i := 0; i < 3; i++ {
		p := core.NewPacket(ids, core.KindMemRead, core.DSID(i%2+1), uint64(i)*64, 64, e.Now())
		r.Begin(src, p)
		r.Enter(dev, p)
		e.Run(e.Now() + 400)
		r.Finish(dev, p)
		p.Complete(e.Now())
	}

	var buf bytes.Buffer
	n, err := r.WritePerfetto(&buf)
	if err != nil || n != 3 {
		t.Fatalf("WritePerfetto = %d, %v", n, err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	counts := map[string]int{}
	window := map[string][2]float64{} // async id -> [begin ts, end ts]
	for _, ev := range doc.TraceEvents {
		ph := ev["ph"].(string)
		counts[ph]++
		if ph == "M" {
			continue
		}
		args, ok := ev["args"].(map[string]any)
		if !ok {
			t.Fatalf("event %v has no args", ev)
		}
		if _, ok := args["dsid"]; !ok {
			t.Fatalf("event %v missing args.dsid", ev)
		}
		switch ph {
		case "b":
			w := window[ev["id"].(string)]
			w[0] = ev["ts"].(float64)
			window[ev["id"].(string)] = w
		case "e":
			w := window[ev["id"].(string)]
			w[1] = ev["ts"].(float64)
			window[ev["id"].(string)] = w
		}
	}
	if counts["M"] != 3 { // process_name + 2 hop threads
		t.Fatalf("metadata events = %d, want 3", counts["M"])
	}
	if counts["b"] != 3 || counts["e"] != 3 || counts["X"] != 3 {
		t.Fatalf("event counts = %v", counts)
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"].(string) != "X" {
			continue
		}
		ts := ev["ts"].(float64)
		dur := ev["dur"].(float64)
		pkt := ev["args"].(map[string]any)["pkt"].(float64)
		// Find the packet's async window by matching pkt id.
		found := false
		for id, w := range window {
			if idMatches(id, uint64(pkt)) {
				found = true
				const eps = 1e-9 // µs float conversion slack
				if ts < w[0]-eps || ts+dur > w[1]+eps {
					t.Fatalf("X span [%v, %v] outside async window %v of %s", ts, ts+dur, w, id)
				}
			}
		}
		if !found {
			t.Fatalf("no async window for packet %v", pkt)
		}
	}
}

func idMatches(hexID string, pkt uint64) bool {
	var v uint64
	_, err := fmtSscanf(hexID, &v)
	return err == nil && v == pkt
}

// fmtSscanf parses the %#x-formatted async id.
func fmtSscanf(s string, v *uint64) (int, error) {
	var parsed uint64
	var n int
	for i := 2; i < len(s); i++ { // skip "0x"
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return n, nil
		}
		parsed = parsed*16 + d
		n++
	}
	*v = parsed
	return n, nil
}
