// Package trace provides ICN observability: a Probe wraps any packet
// target and records per-(kind, DS-id) counters plus an optional ring
// of recent packets. Probes are the debugging counterpart of control-
// plane statistics — they see every packet, not just the accounted
// summaries — and are used by tests and by pardctl's trace command.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// Record is one observed packet.
type Record struct {
	When sim.Tick
	ID   uint64
	Kind core.Kind
	DSID core.DSID
	Addr uint64
	Size uint32
}

// Key aggregates counters per (kind, DS-id).
type Key struct {
	Kind core.Kind
	DSID core.DSID
}

// numKinds sizes the dense per-DSID counter rows (core.Kind is a small
// contiguous enum ending at KindInterrupt).
const numKinds = int(core.KindInterrupt) + 1

// Probe is a transparent core.Target wrapper.
type Probe struct {
	Name string

	engine *sim.Engine
	next   core.Target

	counts map[Key]uint64
	bytes  map[Key]uint64

	// Dense fast-path counters, indexed [DSID][Kind], active after
	// Prealloc. The hot path then increments in place — no map-bucket
	// allocation on first sight of a (kind, DS-id) pair. Out-of-range
	// DS-ids fall back to the maps.
	denseCounts [][numKinds]uint64
	denseBytes  [][numKinds]uint64

	ring    []Record
	ringCap int
	ringPos int
	total   uint64

	// Filter, if non-nil, limits ring capture (counters always run).
	Filter func(*core.Packet) bool
}

// NewProbe wraps next. ringCap bounds the recent-packet buffer
// (0 disables capture; counters still work).
func NewProbe(name string, e *sim.Engine, next core.Target, ringCap int) *Probe {
	return &Probe{
		Name:    name,
		engine:  e,
		next:    next,
		counts:  make(map[Key]uint64),
		bytes:   make(map[Key]uint64),
		ring:    make([]Record, 0, ringCap),
		ringCap: ringCap,
	}
}

// Prealloc sizes the dense counter index for DS-ids 0..maxDSID, so the
// hot path stops allocating map buckets on first sight of each
// (kind, DS-id). Counters already accumulated in the maps migrate into
// the dense index; DS-ids above maxDSID keep using the maps.
func (p *Probe) Prealloc(maxDSID core.DSID) {
	n := int(maxDSID) + 1
	if n <= len(p.denseCounts) {
		return
	}
	dc := make([][numKinds]uint64, n)
	db := make([][numKinds]uint64, n)
	copy(dc, p.denseCounts)
	copy(db, p.denseBytes)
	p.denseCounts, p.denseBytes = dc, db
	for k, c := range p.counts {
		if int(k.DSID) < n && int(k.Kind) < numKinds {
			p.denseCounts[k.DSID][k.Kind] += c
			delete(p.counts, k)
		}
	}
	for k, b := range p.bytes {
		if int(k.DSID) < n && int(k.Kind) < numKinds {
			p.denseBytes[k.DSID][k.Kind] += b
			delete(p.bytes, k)
		}
	}
}

// Request records the packet and forwards it unchanged.
func (p *Probe) Request(pkt *core.Packet) {
	if int(pkt.DSID) < len(p.denseCounts) && int(pkt.Kind) < numKinds {
		p.denseCounts[pkt.DSID][pkt.Kind]++
		p.denseBytes[pkt.DSID][pkt.Kind] += uint64(pkt.Size)
	} else {
		k := Key{Kind: pkt.Kind, DSID: pkt.DSID}
		p.counts[k]++
		p.bytes[k] += uint64(pkt.Size)
	}
	p.total++
	if p.ringCap > 0 && (p.Filter == nil || p.Filter(pkt)) {
		r := Record{
			When: p.engine.Now(), ID: pkt.ID, Kind: pkt.Kind,
			DSID: pkt.DSID, Addr: pkt.Addr, Size: pkt.Size,
		}
		if len(p.ring) < p.ringCap {
			p.ring = append(p.ring, r)
		} else {
			p.ring[p.ringPos] = r
			p.ringPos = (p.ringPos + 1) % p.ringCap
		}
	}
	p.next.Request(pkt)
}

// Total returns the number of packets observed.
func (p *Probe) Total() uint64 { return p.total }

// Count returns the packet count for one (kind, DS-id).
func (p *Probe) Count(kind core.Kind, ds core.DSID) uint64 {
	n := p.counts[Key{Kind: kind, DSID: ds}]
	if int(ds) < len(p.denseCounts) && int(kind) < numKinds {
		n += p.denseCounts[ds][kind]
	}
	return n
}

// Bytes returns accumulated bytes for one (kind, DS-id).
func (p *Probe) Bytes(kind core.Kind, ds core.DSID) uint64 {
	b := p.bytes[Key{Kind: kind, DSID: ds}]
	if int(ds) < len(p.denseBytes) && int(kind) < numKinds {
		b += p.denseBytes[ds][kind]
	}
	return b
}

// CountByDSID sums packet counts across kinds for ds.
func (p *Probe) CountByDSID(ds core.DSID) uint64 {
	var n uint64
	for k, c := range p.counts {
		if k.DSID == ds {
			n += c
		}
	}
	if int(ds) < len(p.denseCounts) {
		for _, c := range p.denseCounts[ds] {
			n += c
		}
	}
	return n
}

// Recent returns the captured ring in arrival order.
func (p *Probe) Recent() []Record {
	if len(p.ring) < p.ringCap {
		return append([]Record(nil), p.ring...)
	}
	out := make([]Record, 0, p.ringCap)
	out = append(out, p.ring[p.ringPos:]...)
	out = append(out, p.ring[:p.ringPos]...)
	return out
}

// Reset clears counters and the ring. A Prealloc'd dense index keeps
// its capacity (zeroed), so the hot path stays allocation-free.
func (p *Probe) Reset() {
	p.counts = make(map[Key]uint64)
	p.bytes = make(map[Key]uint64)
	for i := range p.denseCounts {
		p.denseCounts[i] = [numKinds]uint64{}
		p.denseBytes[i] = [numKinds]uint64{}
	}
	p.ring = p.ring[:0]
	p.ringPos = 0
	p.total = 0
}

// each calls f for every (kind, DS-id) with a nonzero packet count,
// merging the dense index and the overflow maps.
func (p *Probe) each(f func(k Key, pkts, bytes uint64)) {
	for i := range p.denseCounts {
		for kind := 0; kind < numKinds; kind++ {
			if c := p.denseCounts[i][kind]; c > 0 {
				k := Key{Kind: core.Kind(kind), DSID: core.DSID(i)}
				f(k, c, p.denseBytes[i][kind])
			}
		}
	}
	for k, c := range p.counts {
		f(k, c, p.bytes[k])
	}
}

// Summary renders the counter table sorted by count, for reports.
func (p *Probe) Summary() string {
	type row struct {
		k    Key
		n, b uint64
	}
	rows := make([]row, 0, len(p.counts))
	p.each(func(k Key, n, b uint64) {
		rows = append(rows, row{k, n, b})
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		if rows[i].k.DSID != rows[j].k.DSID {
			return rows[i].k.DSID < rows[j].k.DSID
		}
		return rows[i].k.Kind < rows[j].k.Kind
	})
	var b strings.Builder
	fmt.Fprintf(&b, "probe %s: %d packets\n", p.Name, p.total)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10v %-6v %10d pkts %12d bytes\n",
			r.k.Kind, r.k.DSID, r.n, r.b)
	}
	return b.String()
}
