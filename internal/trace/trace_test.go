package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

type sink struct{ got []*core.Packet }

func (s *sink) Request(p *core.Packet) { s.got = append(s.got, p) }

func observe(p *Probe, ids *core.IDSource, kind core.Kind, ds core.DSID, n int) {
	for i := 0; i < n; i++ {
		p.Request(core.NewPacket(ids, kind, ds, uint64(i)*64, 64, 0))
	}
}

func TestProbeForwardsAndCounts(t *testing.T) {
	e := sim.NewEngine()
	s := &sink{}
	p := NewProbe("llc", e, s, 8)
	ids := &core.IDSource{}
	observe(p, ids, core.KindMemRead, 1, 5)
	observe(p, ids, core.KindWriteback, 2, 3)
	if len(s.got) != 8 {
		t.Fatalf("forwarded %d packets", len(s.got))
	}
	if p.Total() != 8 {
		t.Fatalf("Total = %d", p.Total())
	}
	if p.Count(core.KindMemRead, 1) != 5 || p.Count(core.KindWriteback, 2) != 3 {
		t.Fatal("per-key counts wrong")
	}
	if p.Bytes(core.KindMemRead, 1) != 5*64 {
		t.Fatalf("bytes = %d", p.Bytes(core.KindMemRead, 1))
	}
	if p.CountByDSID(1) != 5 || p.CountByDSID(2) != 3 {
		t.Fatal("CountByDSID wrong")
	}
}

func TestProbeRingWraps(t *testing.T) {
	e := sim.NewEngine()
	p := NewProbe("x", e, &sink{}, 4)
	ids := &core.IDSource{}
	observe(p, ids, core.KindMemRead, 1, 10)
	recent := p.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	// Oldest-first: the last 4 packets (IDs 7..10) in order.
	for i := 1; i < len(recent); i++ {
		if recent[i].ID != recent[i-1].ID+1 {
			t.Fatalf("ring order broken: %+v", recent)
		}
	}
	if recent[3].ID != 10 {
		t.Fatalf("newest record id = %d, want 10", recent[3].ID)
	}
}

func TestProbeZeroRingStillCounts(t *testing.T) {
	e := sim.NewEngine()
	p := NewProbe("x", e, &sink{}, 0)
	observe(p, &core.IDSource{}, core.KindDMAWrite, 3, 7)
	if p.Total() != 7 || len(p.Recent()) != 0 {
		t.Fatal("zero-capacity ring misbehaved")
	}
}

func TestProbeFilterLimitsRingOnly(t *testing.T) {
	e := sim.NewEngine()
	p := NewProbe("x", e, &sink{}, 16)
	p.Filter = func(pkt *core.Packet) bool { return pkt.DSID == 2 }
	ids := &core.IDSource{}
	observe(p, ids, core.KindMemRead, 1, 4)
	observe(p, ids, core.KindMemRead, 2, 2)
	if p.Total() != 6 {
		t.Fatal("filter suppressed counters")
	}
	recent := p.Recent()
	if len(recent) != 2 || recent[0].DSID != 2 {
		t.Fatalf("filtered ring: %+v", recent)
	}
}

func TestProbeReset(t *testing.T) {
	e := sim.NewEngine()
	p := NewProbe("x", e, &sink{}, 4)
	observe(p, &core.IDSource{}, core.KindMemRead, 1, 3)
	p.Reset()
	if p.Total() != 0 || len(p.Recent()) != 0 || p.Count(core.KindMemRead, 1) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestProbeSummary(t *testing.T) {
	e := sim.NewEngine()
	p := NewProbe("mem", e, &sink{}, 0)
	ids := &core.IDSource{}
	observe(p, ids, core.KindMemRead, 1, 9)
	observe(p, ids, core.KindWriteback, 2, 1)
	out := p.Summary()
	if !strings.Contains(out, "probe mem: 10 packets") {
		t.Fatalf("summary header: %q", out)
	}
	// Sorted by count: MemRead line first.
	if strings.Index(out, "MemRead") > strings.Index(out, "Writeback") {
		t.Fatalf("summary not sorted by count:\n%s", out)
	}
}
