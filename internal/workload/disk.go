package workload

import "repro/internal/sim"

// DiskCopy models "dd if=/dev/zero of=/dev/sdb bs=32M count=16"
// (paper §7.1.3): a loop of large sequential disk transfers with a
// little compute between chunks. When Loop is set the copy restarts
// after TotalBytes, producing a sustained bandwidth demand.
type DiskCopy struct {
	TotalBytes uint64
	ChunkBytes uint32 // per-request transfer size; 0 means 256 KiB
	Write      bool
	Loop       bool
	Compute    uint64 // cycles of buffer management per chunk

	pos       uint64
	gap       bool
	Completed uint64 // bytes transferred
}

// Next emits the next chunk transfer, or OpDone when a non-looping copy
// finishes.
func (d *DiskCopy) Next(sim.Tick) Op {
	chunk := d.ChunkBytes
	if chunk == 0 {
		chunk = 256 << 10
	}
	if d.pos >= d.TotalBytes {
		if !d.Loop {
			return Op{Kind: OpDone}
		}
		d.pos = 0
	}
	if d.Compute > 0 && !d.gap {
		d.gap = true
		return Op{Kind: OpCompute, Cycles: d.Compute}
	}
	d.gap = false
	n := uint64(chunk)
	if rem := d.TotalBytes - d.pos; rem < n {
		n = rem
	}
	op := Op{Kind: OpDiskWrite, Addr: d.pos, Bytes: uint32(n)}
	if !d.Write {
		op.Kind = OpDiskRead
	}
	d.pos += n
	d.Completed += n
	return op
}
