package workload

import (
	"math/rand"

	"repro/internal/metric"
	"repro/internal/sim"
)

// MemcachedConfig parameterizes the latency-critical service model.
type MemcachedConfig struct {
	// RPS is the offered load in requests per second (Poisson arrivals).
	RPS float64
	// ComputeCycles is the per-request protocol/CPU work.
	ComputeCycles uint64
	// Accesses is the number of dependent memory accesses per request
	// (hash-table probes and value reads).
	Accesses int
	// FootprintBytes is the server's resident hash-table + value store.
	FootprintBytes uint64
	// Base is the region base address.
	Base uint64
	Seed int64
}

// Memcached models the paper's co-located memcached client+server pair
// sharing one core (§7.1.2): requests arrive in an open Poisson stream;
// each is served with compute plus dependent memory accesses over the
// server footprint; response latency — queueing included — feeds a
// histogram whose 95th percentile is Figure 8's y-axis.
type Memcached struct {
	cfg MemcachedConfig
	r   *rand.Rand

	prewarmPos  uint64 // next address of the dataset-load phase
	prewarmed   bool
	nextArrival sim.Tick
	started     bool
	queue       []sim.Tick // arrival times of waiting requests

	inFlight   bool
	curArrival sim.Tick
	opsLeft    int
	didCompute bool

	// Latencies records request latency in ticks; use TailLatency to
	// read it in milliseconds.
	Latencies *metric.Histogram
	Completed uint64
	Arrived   uint64
}

// NewMemcached builds the generator.
func NewMemcached(cfg MemcachedConfig) *Memcached {
	if cfg.RPS <= 0 {
		panic("workload: memcached RPS must be positive")
	}
	if cfg.Accesses <= 0 {
		cfg.Accesses = 1
	}
	if cfg.FootprintBytes < 64 {
		cfg.FootprintBytes = 64
	}
	return &Memcached{
		cfg:       cfg,
		r:         newRand(cfg.Seed),
		Latencies: metric.NewHistogram(),
	}
}

// interarrival draws an exponential gap in ticks.
func (m *Memcached) interarrival() sim.Tick {
	sec := m.r.ExpFloat64() / m.cfg.RPS
	t := sim.Tick(sec * float64(sim.Second))
	if t == 0 {
		t = 1
	}
	return t
}

// admit moves due arrivals into the queue.
func (m *Memcached) admit(now sim.Tick) {
	if !m.started {
		m.started = true
		m.nextArrival = now + m.interarrival()
	}
	for m.nextArrival <= now {
		m.queue = append(m.queue, m.nextArrival)
		m.Arrived++
		m.nextArrival += m.interarrival()
	}
}

// Next implements Generator.
func (m *Memcached) Next(now sim.Tick) Op {
	// Dataset load: the server touches its whole value store once
	// before accepting requests, the equivalent of the paper's
	// warmed-up checkpoint. Arrivals start when the load finishes.
	if !m.prewarmed {
		if m.prewarmPos < m.cfg.FootprintBytes {
			op := Op{Kind: OpLoad, Addr: m.cfg.Base + m.prewarmPos}
			m.prewarmPos += 64
			return op
		}
		m.prewarmed = true
	}
	m.admit(now)

	if m.inFlight {
		if !m.didCompute {
			m.didCompute = true
			return Op{Kind: OpCompute, Cycles: m.cfg.ComputeCycles}
		}
		if m.opsLeft > 0 {
			m.opsLeft--
			blocks := m.cfg.FootprintBytes / 64
			addr := m.cfg.Base + uint64(m.r.Int63n(int64(blocks)))*64
			return Op{Kind: OpLoad, Addr: addr}
		}
		// Request finished: latency includes the time it waited in the
		// arrival queue behind earlier requests.
		m.Latencies.Observe(uint64(now - m.curArrival))
		m.Completed++
		m.inFlight = false
	}

	if len(m.queue) > 0 {
		m.curArrival = m.queue[0]
		m.queue = m.queue[1:]
		m.inFlight = true
		m.opsLeft = m.cfg.Accesses
		m.didCompute = false
		return m.Next(now)
	}

	// No work: sleep until the next arrival.
	return Op{Kind: OpIdle, Cycles: idleCycles(m.nextArrival - now)}
}

// TailLatencyMs returns the p-quantile response time in milliseconds.
func (m *Memcached) TailLatencyMs(p float64) float64 {
	return float64(m.Latencies.Percentile(p)) / float64(sim.Millisecond)
}

// MeanLatencyMs returns the mean response time in milliseconds.
func (m *Memcached) MeanLatencyMs() float64 {
	return m.Latencies.Mean() / float64(sim.Millisecond)
}

// QueueDepth returns the number of requests waiting (excluding the one
// in service).
func (m *Memcached) QueueDepth() int { return len(m.queue) }

// ResetStats clears latency accounting (e.g. after warmup) without
// disturbing the arrival process or queue.
func (m *Memcached) ResetStats() {
	m.Latencies.Reset()
	m.Completed = 0
	m.Arrived = 0
}
