package workload

import "repro/internal/sim"

// Stream is a STREAM-triad-style generator: per iteration it loads from
// two source arrays and stores to a destination array, with a
// configurable compute gap controlling memory intensity. The footprint
// is walked sequentially at cache-block stride and wraps forever.
type Stream struct {
	Base      uint64 // region base address
	Footprint uint64 // bytes per array
	Stride    uint64 // bytes between accesses; 0 means 64
	Compute   uint64 // compute cycles before each access

	pos   uint64
	phase int // 0: load a, 1: load b, 2: store c, interleaved with compute
	gap   bool
}

// Next alternates compute gaps with triad accesses.
func (s *Stream) Next(sim.Tick) Op {
	stride := s.Stride
	if stride == 0 {
		stride = 64
	}
	if s.Compute > 0 && !s.gap {
		s.gap = true
		return Op{Kind: OpCompute, Cycles: s.Compute}
	}
	s.gap = false
	off := s.pos % s.Footprint
	var op Op
	switch s.phase {
	case 0:
		op = Op{Kind: OpLoad, Addr: s.Base + off}
	case 1:
		op = Op{Kind: OpLoad, Addr: s.Base + s.Footprint + off}
	default:
		op = Op{Kind: OpStore, Addr: s.Base + 2*s.Footprint + off}
		s.pos += stride
	}
	s.phase = (s.phase + 1) % 3
	return op
}

// CacheFlush touches a footprint much larger than the LLC with uniformly
// random block accesses, evicting everyone else's blocks as fast as the
// memory system allows (the paper's CacheFlush microbenchmark).
type CacheFlush struct {
	Base      uint64
	Footprint uint64 // should exceed LLC capacity
	Compute   uint64 // compute cycles between accesses (usually small)
	Seed      int64

	r   *randSource
	gap bool
}

type randSource struct{ s uint64 }

func (r *randSource) next() uint64 { // xorshift64*: fast, deterministic
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Next returns the next random-block load.
func (c *CacheFlush) Next(sim.Tick) Op {
	if c.r == nil {
		seed := uint64(c.Seed)
		if seed == 0 {
			seed = 0x9E3779B97F4A7C15
		}
		//pardlint:ignore hotalloc lazy PRNG init: once per generator lifetime
		c.r = &randSource{s: seed}
	}
	if c.Compute > 0 && !c.gap {
		c.gap = true
		return Op{Kind: OpCompute, Cycles: c.Compute}
	}
	c.gap = false
	blocks := c.Footprint / 64
	off := c.r.next() % blocks * 64
	return Op{Kind: OpLoad, Addr: c.Base + off}
}

// SPEC CPU2006 proxies. Only the footprint and memory intensity of the
// originals matter to the shared LLC and DRAM; these generators match
// those characteristics (DESIGN.md §2):
//
//   - 470.lbm: fluid dynamics, large streaming footprint, memory-bound.
//   - 437.leslie3d: computational fluid dynamics, moderate footprint and
//     arithmetic intensity.

// NewLBM returns a 470.lbm proxy over a region at base.
func NewLBM(base uint64) *Stream {
	return &Stream{Base: base, Footprint: 24 << 20, Compute: 2}
}

// NewLeslie3d returns a 437.leslie3d proxy over a region at base.
func NewLeslie3d(base uint64) *Stream {
	return &Stream{Base: base, Footprint: 8 << 20, Compute: 10}
}

// NewSTREAM returns the STREAM co-runner used by the Figure 8/9
// co-location experiments: memory-intensive with a multi-MB footprint.
func NewSTREAM(base uint64) *Stream {
	return &Stream{Base: base, Footprint: 4 << 20, Compute: 4}
}

// PointerChase models linked-data-structure traversal (429.mcf-like):
// each load's address depends on the previous one, so memory latency —
// not bandwidth — bounds progress. The chain is a deterministic
// permutation of the footprint's blocks generated from Seed.
type PointerChase struct {
	Base      uint64
	Footprint uint64
	Compute   uint64 // cycles between dependent loads
	Seed      int64

	cur uint64 // current block index
	r   *randSource
	gap bool
}

// Next returns the next dependent load.
func (p *PointerChase) Next(sim.Tick) Op {
	if p.r == nil {
		seed := uint64(p.Seed)
		if seed == 0 {
			seed = 0xD1B54A32D192ED03
		}
		//pardlint:ignore hotalloc lazy PRNG init: once per generator lifetime
		p.r = &randSource{s: seed}
	}
	if p.Compute > 0 && !p.gap {
		p.gap = true
		return Op{Kind: OpCompute, Cycles: p.Compute}
	}
	p.gap = false
	blocks := p.Footprint / 64
	// The "pointer" stored at the current node: a deterministic
	// pseudo-random successor. Using the PRNG keyed by position keeps
	// the chain reproducible without materializing it.
	p.cur = (p.cur*6364136223846793005 + p.r.next()%blocks) % blocks
	return Op{Kind: OpLoad, Addr: p.Base + p.cur*64}
}

// NewMCF returns a 429.mcf proxy: pointer-heavy, latency-bound, with a
// footprint well beyond the LLC.
func NewMCF(base uint64) *PointerChase {
	return &PointerChase{Base: base, Footprint: 32 << 20, Compute: 3}
}

// NewLibquantum returns a 462.libquantum proxy: pure streaming over a
// large array with almost no compute between touches.
func NewLibquantum(base uint64) *Stream {
	return &Stream{Base: base, Footprint: 16 << 20, Compute: 1}
}

// NewPovray returns a 453.povray proxy: compute-bound with a small hot
// footprint that lives in the upper cache levels.
func NewPovray(base uint64) *Stream {
	return &Stream{Base: base, Footprint: 256 << 10, Compute: 40}
}
