// Package workload provides the traffic generators driven by CPU cores:
// the latency-critical memcached model, the STREAM / CacheFlush
// microbenchmarks, SPEC CPU2006 access-pattern proxies and the dd-style
// disk copy — the workload mix of the paper's evaluation (§7, Table 2).
package workload

import (
	"math/rand"

	"repro/internal/sim"
)

// OpKind classifies one operation a core executes.
type OpKind uint8

// Operation kinds.
const (
	OpCompute   OpKind = iota // busy for Cycles core cycles
	OpIdle                    // idle for Cycles core cycles (no work)
	OpLoad                    // memory read at Addr
	OpStore                   // memory write at Addr
	OpDiskRead                // PIO+DMA disk read of Bytes
	OpDiskWrite               // PIO+DMA disk write of Bytes
	OpDone                    // workload finished
)

// Op is one operation.
type Op struct {
	Kind   OpKind
	Cycles uint64
	Addr   uint64
	Bytes  uint32
}

// Generator produces a core's operation stream. Next is called once the
// previous operation retires; now is the current simulation time.
type Generator interface {
	Next(now sim.Tick) Op
}

// idleCycles converts a tick delay to whole core cycles (minimum 1) for
// an OpIdle, assuming the 2 GHz core clock of Table 2.
func idleCycles(d sim.Tick) uint64 {
	const corePeriod = 500 // ticks per 2 GHz cycle
	n := uint64(d) / corePeriod
	if n == 0 {
		n = 1
	}
	return n
}

// Spin is a pure-compute generator: the core stays 100% busy without
// touching memory. Useful as a neutral co-runner and in core tests.
type Spin struct{ Quantum uint64 }

// Next always returns a compute burst.
func (s *Spin) Next(sim.Tick) Op {
	q := s.Quantum
	if q == 0 {
		q = 100
	}
	return Op{Kind: OpCompute, Cycles: q}
}

// Finite wraps a generator, ending the stream after N operations.
type Finite struct {
	Gen  Generator
	N    uint64
	seen uint64
}

// Next forwards to the inner generator until N ops have been produced.
func (f *Finite) Next(now sim.Tick) Op {
	if f.seen >= f.N {
		return Op{Kind: OpDone}
	}
	f.seen++
	return f.Gen.Next(now)
}

// Sequence runs generators back to back: each inner generator runs
// until it returns OpDone, then the next takes over. The sequence ends
// when the last one does. Use it to script phased scenarios (boot, then
// serve; load dataset, then benchmark).
type Sequence struct {
	Gens []Generator
	idx  int
}

// Next forwards to the current generator, advancing on OpDone.
func (s *Sequence) Next(now sim.Tick) Op {
	for s.idx < len(s.Gens) {
		op := s.Gens[s.idx].Next(now)
		if op.Kind != OpDone {
			return op
		}
		s.idx++
	}
	return Op{Kind: OpDone}
}

// Delayed idles for Delay ticks (from first Next), then runs Gen. It
// models an LDom whose application starts after OS boot.
type Delayed struct {
	Delay sim.Tick
	Gen   Generator

	started bool
	startAt sim.Tick
}

// Next idles until the delay elapses, then forwards.
func (d *Delayed) Next(now sim.Tick) Op {
	if !d.started {
		d.started = true
		d.startAt = now
	}
	if now < d.startAt+d.Delay {
		return Op{Kind: OpIdle, Cycles: idleCycles(d.startAt + d.Delay - now)}
	}
	return d.Gen.Next(now)
}

// newRand returns the deterministic PRNG used by all generators.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
