package workload

import (
	"testing"

	"repro/internal/sim"
)

func TestSpinOnlyComputes(t *testing.T) {
	s := &Spin{Quantum: 50}
	for i := 0; i < 10; i++ {
		op := s.Next(0)
		if op.Kind != OpCompute || op.Cycles != 50 {
			t.Fatalf("Spin produced %+v", op)
		}
	}
	var d Spin
	if op := d.Next(0); op.Cycles == 0 {
		t.Fatal("zero-quantum Spin produced zero-cycle compute")
	}
}

func TestFiniteEnds(t *testing.T) {
	f := &Finite{Gen: &Spin{}, N: 3}
	for i := 0; i < 3; i++ {
		if op := f.Next(0); op.Kind != OpCompute {
			t.Fatalf("op %d = %+v", i, op)
		}
	}
	if op := f.Next(0); op.Kind != OpDone {
		t.Fatalf("4th op = %+v, want OpDone", op)
	}
	if op := f.Next(0); op.Kind != OpDone {
		t.Fatalf("OpDone not sticky: %+v", op)
	}
}

func TestSequenceChainsGenerators(t *testing.T) {
	s := &Sequence{Gens: []Generator{
		&Finite{Gen: &Spin{Quantum: 1}, N: 2},
		&Finite{Gen: &Stream{Base: 0, Footprint: 1 << 16}, N: 3},
	}}
	var kinds []OpKind
	for i := 0; i < 6; i++ {
		kinds = append(kinds, s.Next(0).Kind)
	}
	if kinds[0] != OpCompute || kinds[1] != OpCompute {
		t.Fatalf("first phase wrong: %v", kinds)
	}
	if kinds[2] == OpDone || kinds[5] != OpDone {
		t.Fatalf("phase transition wrong: %v", kinds)
	}
	if s.Next(0).Kind != OpDone {
		t.Fatal("OpDone not sticky")
	}
}

func TestDelayedIdlesThenRuns(t *testing.T) {
	d := &Delayed{Delay: 10 * sim.Microsecond, Gen: &Spin{Quantum: 7}}
	op := d.Next(sim.Microsecond) // first call stamps start
	if op.Kind != OpIdle {
		t.Fatalf("op during delay = %+v", op)
	}
	if op := d.Next(5 * sim.Microsecond); op.Kind != OpIdle {
		t.Fatalf("op during delay = %+v", op)
	}
	if op := d.Next(12 * sim.Microsecond); op.Kind != OpCompute || op.Cycles != 7 {
		t.Fatalf("op after delay = %+v", op)
	}
}

func TestStreamTriadPattern(t *testing.T) {
	s := &Stream{Base: 0x1000, Footprint: 1 << 20, Compute: 2}
	var kinds []OpKind
	var addrs []uint64
	for i := 0; i < 12; i++ {
		op := s.Next(0)
		kinds = append(kinds, op.Kind)
		if op.Kind == OpLoad || op.Kind == OpStore {
			addrs = append(addrs, op.Addr)
		}
	}
	// Pattern: C L C L C S repeated.
	want := []OpKind{OpCompute, OpLoad, OpCompute, OpLoad, OpCompute, OpStore}
	for i, k := range kinds[:6] {
		if k != want[i] {
			t.Fatalf("op sequence %v, want prefix %v", kinds, want)
		}
	}
	// Three distinct arrays.
	if !(addrs[0] >= 0x1000 && addrs[1] >= 0x1000+1<<20 && addrs[2] >= 0x1000+2<<20) {
		t.Fatalf("triad addresses not in distinct arrays: %#x", addrs[:3])
	}
	// Second iteration advances by one stride.
	if addrs[3] != addrs[0]+64 {
		t.Fatalf("stride: %#x -> %#x", addrs[0], addrs[3])
	}
}

func TestStreamWrapsFootprint(t *testing.T) {
	s := &Stream{Base: 0, Footprint: 256} // 4 blocks
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		op := s.Next(0)
		if op.Kind == OpLoad && op.Addr < 256 {
			seen[op.Addr] = true
			if op.Addr >= 256 {
				t.Fatalf("array-a access beyond footprint: %#x", op.Addr)
			}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("visited %d blocks of array a, want 4", len(seen))
	}
}

func TestCacheFlushStaysInRegionAndSpreads(t *testing.T) {
	c := &CacheFlush{Base: 1 << 30, Footprint: 1 << 20, Seed: 3}
	seen := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		op := c.Next(0)
		if op.Kind != OpLoad {
			t.Fatalf("CacheFlush produced %+v", op)
		}
		if op.Addr < 1<<30 || op.Addr >= 1<<30+1<<20 {
			t.Fatalf("address %#x outside region", op.Addr)
		}
		if op.Addr%64 != 0 {
			t.Fatalf("address %#x not block aligned", op.Addr)
		}
		seen[op.Addr] = true
	}
	if len(seen) < 1000 {
		t.Fatalf("only %d distinct blocks in 2000 random accesses", len(seen))
	}
}

func TestSpecProxiesDiffer(t *testing.T) {
	lbm := NewLBM(0)
	leslie := NewLeslie3d(0)
	if lbm.Footprint <= leslie.Footprint {
		t.Fatal("lbm proxy should have the larger footprint")
	}
	if lbm.Compute >= leslie.Compute {
		t.Fatal("lbm proxy should be more memory-intensive (less compute)")
	}
}

func TestPointerChaseStaysInFootprintAndIsDeterministic(t *testing.T) {
	run := func() []uint64 {
		p := &PointerChase{Base: 1 << 20, Footprint: 1 << 18, Compute: 2, Seed: 9}
		var addrs []uint64
		for i := 0; i < 200; i++ {
			op := p.Next(0)
			if op.Kind == OpLoad {
				if op.Addr < 1<<20 || op.Addr >= 1<<20+1<<18 {
					t.Fatalf("address %#x outside footprint", op.Addr)
				}
				addrs = append(addrs, op.Addr)
			}
		}
		return addrs
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	distinct := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pointer chase not deterministic")
		}
		distinct[a[i]] = true
	}
	if len(distinct) < len(a)/2 {
		t.Fatalf("chain too repetitive: %d distinct of %d", len(distinct), len(a))
	}
}

func TestSpecProxyCharacters(t *testing.T) {
	// The proxies' defining characteristics, coarsely.
	if NewMCF(0).Footprint <= NewLibquantum(0).Footprint/2 {
		t.Fatal("mcf should have a large footprint")
	}
	if NewPovray(0).Compute <= NewLibquantum(0).Compute {
		t.Fatal("povray should be compute-bound relative to libquantum")
	}
	if NewPovray(0).Footprint >= NewLibquantum(0).Footprint {
		t.Fatal("povray should have the small footprint")
	}
}

func TestDiskCopyChunksAndCompletes(t *testing.T) {
	d := &DiskCopy{TotalBytes: 1 << 20, ChunkBytes: 256 << 10, Write: true, Compute: 10}
	var bytes uint64
	var ops int
	for {
		op := d.Next(0)
		if op.Kind == OpDone {
			break
		}
		if op.Kind == OpDiskWrite {
			bytes += uint64(op.Bytes)
			ops++
		}
		if ops > 100 {
			t.Fatal("disk copy never finished")
		}
	}
	if bytes != 1<<20 || ops != 4 {
		t.Fatalf("transferred %d bytes in %d ops, want 1MiB in 4", bytes, ops)
	}
	if d.Completed != 1<<20 {
		t.Fatalf("Completed = %d", d.Completed)
	}
}

func TestDiskCopyLoops(t *testing.T) {
	d := &DiskCopy{TotalBytes: 256 << 10, ChunkBytes: 256 << 10, Write: true, Loop: true}
	for i := 0; i < 10; i++ {
		if op := d.Next(0); op.Kind == OpDone {
			t.Fatal("looping disk copy ended")
		}
	}
	if d.Completed < 5*(256<<10) {
		t.Fatalf("loop transferred only %d bytes", d.Completed)
	}
}

func TestDiskCopyPartialTail(t *testing.T) {
	d := &DiskCopy{TotalBytes: 300 << 10, ChunkBytes: 256 << 10, Write: true}
	op1 := d.Next(0)
	op2 := d.Next(0)
	if op1.Bytes != 256<<10 || op2.Bytes != 44<<10 {
		t.Fatalf("chunks = %d, %d", op1.Bytes, op2.Bytes)
	}
}

func TestMemcachedPrewarmThenIdle(t *testing.T) {
	m := NewMemcached(MemcachedConfig{RPS: 1000, ComputeCycles: 100, Accesses: 4, FootprintBytes: 1 << 20, Seed: 1})
	// Dataset load: one sequential pass over the footprint.
	blocks := int(m.cfg.FootprintBytes / 64)
	for i := 0; i < blocks; i++ {
		op := m.Next(0)
		if op.Kind != OpLoad || op.Addr != uint64(i)*64 {
			t.Fatalf("prewarm op %d = %+v", i, op)
		}
	}
	// Then idle until the first request arrives.
	if op := m.Next(0); op.Kind != OpIdle {
		t.Fatalf("post-prewarm op = %+v, want OpIdle before first arrival", op)
	}
}

// drainPrewarm consumes the dataset-load phase.
func drainPrewarm(m *Memcached) {
	for i := uint64(0); i < m.cfg.FootprintBytes/64; i++ {
		m.Next(0)
	}
}

func TestMemcachedServesRequests(t *testing.T) {
	m := NewMemcached(MemcachedConfig{RPS: 1e8, ComputeCycles: 10, Accesses: 3, FootprintBytes: 1 << 20, Seed: 2})
	drainPrewarm(m)
	now := sim.Tick(0)
	loads, computes := 0, 0
	for i := 0; i < 200; i++ {
		op := m.Next(now)
		switch op.Kind {
		case OpLoad:
			loads++
			if op.Addr >= 1<<20 {
				t.Fatalf("load outside footprint: %#x", op.Addr)
			}
		case OpCompute:
			computes++
		}
		now += 1000 // advance 1ns per op
	}
	if m.Completed == 0 {
		t.Fatal("no requests completed at extreme load")
	}
	if loads != int(m.Completed+1)*3 && loads < 3 {
		t.Fatalf("loads = %d for %d completed requests", loads, m.Completed)
	}
	if m.Latencies.Count() != m.Completed {
		t.Fatal("latency histogram diverges from completion count")
	}
}

func TestMemcachedLatencyIncludesQueueing(t *testing.T) {
	// Service is slow (long compute) so later arrivals queue; their
	// measured latency must exceed pure service time.
	m := NewMemcached(MemcachedConfig{RPS: 1e6, ComputeCycles: 1, Accesses: 1, FootprintBytes: 1 << 20, Seed: 3})
	drainPrewarm(m)
	now := sim.Tick(0)
	// Each op takes 100µs of simulated time: massive overload.
	for i := 0; i < 100; i++ {
		m.Next(now)
		now += 100 * sim.Microsecond
	}
	if m.Completed < 2 {
		t.Skip("not enough completions")
	}
	if m.Latencies.Max() <= uint64(200*sim.Microsecond) {
		t.Fatalf("max latency %v shows no queueing under overload",
			sim.Tick(m.Latencies.Max()))
	}
}

func TestMemcachedResetStats(t *testing.T) {
	m := NewMemcached(MemcachedConfig{RPS: 1e6, ComputeCycles: 1, Accesses: 1, FootprintBytes: 1 << 20, Seed: 4})
	drainPrewarm(m)
	now := sim.Tick(0)
	for i := 0; i < 50; i++ {
		m.Next(now)
		now += sim.Microsecond
	}
	m.ResetStats()
	if m.Completed != 0 || m.Latencies.Count() != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestMemcachedDeterministic(t *testing.T) {
	run := func() uint64 {
		m := NewMemcached(MemcachedConfig{RPS: 50000, ComputeCycles: 10, Accesses: 2, FootprintBytes: 1 << 20, Seed: 9})
		drainPrewarm(m)
		now := sim.Tick(0)
		for i := 0; i < 500; i++ {
			m.Next(now)
			now += 500 * sim.Nanosecond
		}
		return m.Latencies.Sum() + m.Completed*1000003
	}
	if run() != run() {
		t.Fatal("memcached generator not deterministic")
	}
}

func TestMemcachedInvalidRPSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RPS=0 did not panic")
		}
	}()
	NewMemcached(MemcachedConfig{RPS: 0})
}
