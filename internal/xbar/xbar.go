// Package xbar models the intra-computer-network interconnect between
// the private L1s and the shared LLC — the crossbar of the paper's
// OpenSPARC T1 RTL (Figure 1 shows the interconnect as an ICN hop; the
// tag registers' values are "propagated to LLC, crossbar and memory
// controller", §6). Like every shared resource in PARD it carries a
// control plane: per-DS-id weighted round-robin arbitration over the
// single grant port, with queue-delay statistics and triggers.
package xbar

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config describes the crossbar.
type Config struct {
	Name    string
	Latency uint64 // traversal cycles once granted

	TriggerSlots   int
	SampleInterval sim.Tick
}

// DefaultConfig returns a one-cycle crossbar.
func DefaultConfig() Config {
	return Config{Name: "xbar", Latency: 1}
}

// Control-plane columns.
const (
	ParamWeight = "weight" // WRR grants per round; default 1

	StatFwdCnt  = "fwd_cnt"
	StatAvgQLat = "avg_qlat" // windowed mean queue delay, 0.1-cycle units
)

type entry struct {
	pkt *core.Packet
	enq sim.Tick
}

// Crossbar arbitrates tagged packets onto one downstream port.
type Crossbar struct {
	cfg    Config
	engine *sim.Engine
	clock  *sim.Clock
	out    core.Target

	plane *core.Plane

	queues  map[core.DSID][]entry
	ring    []core.DSID
	cursor  int
	credits uint64
	pumping bool

	qlat map[core.DSID]*qlatWin

	// Prebound callbacks so grant/forward scheduling never allocates.
	grantFn func()
	fwdFn   func(*core.Packet)

	// Flight-recorder hop (nil rec disables; every rec call is nil-safe).
	rec *trace.Recorder
	hop int

	Granted uint64
}

type qlatWin struct{ sum, count uint64 }

// New builds a crossbar whose grants forward to out.
func New(e *sim.Engine, clock *sim.Clock, cfg Config, out core.Target) *Crossbar {
	if cfg.TriggerSlots == 0 {
		cfg.TriggerSlots = 64
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = 100 * sim.Microsecond
	}
	if cfg.Latency == 0 {
		cfg.Latency = 1
	}
	x := &Crossbar{
		cfg:    cfg,
		engine: e,
		clock:  clock,
		out:    out,
		queues: make(map[core.DSID][]entry),
		qlat:   make(map[core.DSID]*qlatWin),
	}
	x.grantFn = x.grant
	//pardlint:hotpath prebound post-traversal forward callback
	x.fwdFn = func(p *core.Packet) {
		x.rec.Leave(x.hop, p)
		x.out.Request(p)
	}
	params := core.NewTable(
		core.Column{Name: ParamWeight, Writable: true, Default: 1},
	)
	stats := core.NewTable(
		core.Column{Name: StatFwdCnt},
		core.Column{Name: StatAvgQLat},
	)
	x.plane = core.NewPlane(e, "XBAR_CP", core.PlaneTypeBridge, params, stats, cfg.TriggerSlots)
	e.Schedule(cfg.SampleInterval, x.sample)
	return x
}

// Plane returns the crossbar control plane.
func (x *Crossbar) Plane() *core.Plane { return x.plane }

// AttachRecorder wires the ICN flight recorder into the arbitration
// path under the configured name and returns the hop id. Call before
// traffic.
func (x *Crossbar) AttachRecorder(r *trace.Recorder) int {
	x.rec = r
	x.hop = r.RegisterHop(x.cfg.Name)
	return x.hop
}

// Request enqueues a packet for arbitration.
func (x *Crossbar) Request(p *core.Packet) {
	x.rec.Enter(x.hop, p)
	if _, ok := x.queues[p.DSID]; !ok {
		x.ring = append(x.ring, p.DSID)
	}
	x.queues[p.DSID] = append(x.queues[p.DSID], entry{pkt: p, enq: x.engine.Now()})
	x.pump()
}

func (x *Crossbar) pump() {
	if x.pumping || len(x.ring) == 0 {
		return
	}
	x.pumping = true
	x.engine.At(x.clock.NextEdge(), x.grantFn)
}

func (x *Crossbar) weight(ds core.DSID) uint64 {
	w := x.plane.Param(ds, ParamWeight)
	if w == 0 {
		w = 1
	}
	return w
}

// grant issues one packet per cycle under weighted round robin: the
// current DS-id keeps the port for weight grants per round.
//
//pardlint:hotpath prebound arbitration callback (grantFn)
func (x *Crossbar) grant() {
	x.pumping = false
	// Find the next DS-id with work, consuming credits.
	for scanned := 0; scanned < len(x.ring)+1; scanned++ {
		if len(x.ring) == 0 {
			return
		}
		x.cursor %= len(x.ring)
		ds := x.ring[x.cursor]
		q := x.queues[ds]
		if len(q) == 0 {
			x.ring = append(x.ring[:x.cursor], x.ring[x.cursor+1:]...)
			delete(x.queues, ds)
			x.credits = 0
			continue
		}
		if x.credits == 0 {
			x.credits = x.weight(ds)
		}
		e := q[0]
		x.queues[ds] = q[1:]
		x.credits--
		if x.credits == 0 {
			x.cursor++
		}
		x.forward(ds, e)
		if x.pending() > 0 {
			x.pumping = true
			x.clock.ScheduleCycles(1, x.grantFn)
		}
		return
	}
}

func (x *Crossbar) pending() int {
	n := 0
	//pardlint:ignore determinism summing queue lengths is order-independent
	for _, q := range x.queues {
		n += len(q)
	}
	return n
}

func (x *Crossbar) forward(ds core.DSID, e entry) {
	x.Granted++
	x.plane.AddStat(ds, StatFwdCnt, 1)
	w, ok := x.qlat[ds]
	if !ok {
		//pardlint:ignore hotalloc first sight of a DS-id: bounded by LDom count, not request count
		w = &qlatWin{}
		x.qlat[ds] = w
	}
	w.sum += uint64((x.engine.Now() - e.enq) / x.clock.Period())
	w.count++
	// WRR arbitration wait is over; the traversal that follows is service.
	x.rec.Service(x.hop, e.pkt)
	e.pkt.ScheduleCall(x.clock, x.cfg.Latency, x.fwdFn)
}

func (x *Crossbar) sample() {
	for _, ds := range core.SortedKeys(x.qlat) {
		w := x.qlat[ds]
		if w.count > 0 {
			x.plane.SetStat(ds, StatAvgQLat, w.sum*10/w.count)
		}
		w.sum, w.count = 0, 0
	}
	x.plane.EvaluateAll()
	x.engine.Schedule(x.cfg.SampleInterval, x.sample)
}

func (x *Crossbar) String() string {
	return fmt.Sprintf("%s: granted=%d pending=%d", x.cfg.Name, x.Granted, x.pending())
}
