package xbar

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// slowSink completes packets after a fixed delay, recording arrival
// order.
type slowSink struct {
	e     *sim.Engine
	delay sim.Tick
	order []*core.Packet
}

func (s *slowSink) Request(p *core.Packet) {
	s.order = append(s.order, p)
	s.e.Schedule(s.delay, func() { p.Complete(s.e.Now()) })
}

func newXbar(latency uint64) (*sim.Engine, *Crossbar, *slowSink) {
	e := sim.NewEngine()
	sink := &slowSink{e: e}
	x := New(e, sim.NewClock(e, 500), Config{Name: "x", Latency: latency}, sink)
	return e, x, sink
}

func send(e *sim.Engine, x *Crossbar, ids *core.IDSource, ds core.DSID) *core.Packet {
	p := core.NewPacket(ids, core.KindMemRead, ds, 0x1000, 64, e.Now())
	x.Request(p)
	return p
}

func TestIdleTraversalLatency(t *testing.T) {
	e, x, _ := newXbar(2)
	ids := &core.IDSource{}
	p := send(e, x, ids, 1)
	e.StepUntil(p.Completed)
	// Grant at the next edge (t=0), traversal 2 cycles = 1000 ticks.
	if p.Latency() != 1000 {
		t.Fatalf("latency = %v, want 1ns", p.Latency())
	}
}

func TestPerDSIDOrderPreserved(t *testing.T) {
	e, x, sink := newXbar(1)
	ids := &core.IDSource{}
	var sent []*core.Packet
	for i := 0; i < 10; i++ {
		sent = append(sent, send(e, x, ids, 3))
	}
	e.StepUntil(func() bool { return len(sink.order) == 10 })
	for i, p := range sink.order {
		if p != sent[i] {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestOneGrantPerCycle(t *testing.T) {
	e, x, sink := newXbar(1)
	ids := &core.IDSource{}
	for i := 0; i < 5; i++ {
		send(e, x, ids, core.DSID(i))
	}
	e.StepUntil(func() bool { return len(sink.order) == 5 })
	// 5 grants need at least 4 cycles between first and last arrival.
	first := sink.order[0].Issue // all issued at t=0
	_ = first
	if e.Now() < 4*500 {
		t.Fatalf("5 grants completed in %v; grants not serialized", e.Now())
	}
}

func TestWRRWeightsShiftThroughput(t *testing.T) {
	e, x, _ := newXbar(1)
	ids := &core.IDSource{}
	x.Plane().Params().SetName(1, ParamWeight, 3)
	// Keep both queues saturated for a while.
	var done1, done2 int
	var feed func(ds core.DSID, counter *int)
	feed = func(ds core.DSID, counter *int) {
		p := core.NewPacket(ids, core.KindMemRead, ds, 0, 64, e.Now())
		p.OnDone = func(*core.Packet) {
			*counter++
			feed(ds, counter)
		}
		x.Request(p)
	}
	// Prime several outstanding per DS-id so queues never empty.
	for i := 0; i < 8; i++ {
		feed(1, &done1)
		feed(2, &done2)
	}
	e.Run(100 * sim.Microsecond)
	ratio := float64(done1) / float64(done2)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weighted ratio = %.2f (%d vs %d), want ~3", ratio, done1, done2)
	}
}

func TestQueueDelayStatPublished(t *testing.T) {
	e, x, _ := newXbar(1)
	ids := &core.IDSource{}
	var pkts []*core.Packet
	for i := 0; i < 20; i++ {
		pkts = append(pkts, send(e, x, ids, 4))
	}
	e.StepUntil(func() bool {
		for _, p := range pkts {
			if !p.Completed() {
				return false
			}
		}
		return true
	})
	e.Run(e.Now() + 200*sim.Microsecond)
	if x.Plane().Stat(4, StatFwdCnt) != 20 {
		t.Fatalf("fwd_cnt = %d", x.Plane().Stat(4, StatFwdCnt))
	}
	// 20 back-to-back packets queue: delay stat must be nonzero at the
	// first sample covering them.
	// (avg_qlat may have decayed; fwd_cnt is the durable check.)
}

func TestTriggerOnCrossbarStats(t *testing.T) {
	e, x, _ := newXbar(1)
	ids := &core.IDSource{}
	var fired int
	x.Plane().SetInterrupt(func(core.Notification) { fired++ })
	col, _ := x.Plane().Stats().ColumnIndex(StatFwdCnt)
	x.Plane().InstallTrigger(0, core.Trigger{
		DSID: 5, StatCol: col, Op: core.OpGE, Value: 10, Enabled: true,
	})
	var pkts []*core.Packet
	for i := 0; i < 15; i++ {
		pkts = append(pkts, send(e, x, ids, 5))
	}
	e.Run(e.Now() + 300*sim.Microsecond)
	if fired != 1 {
		t.Fatalf("trigger fired %d times", fired)
	}
	_ = pkts
}

func TestEmptyQueueCleanup(t *testing.T) {
	e, x, _ := newXbar(1)
	ids := &core.IDSource{}
	p := send(e, x, ids, 7)
	e.StepUntil(p.Completed)
	// Grant another from a different DS-id; the ring must have cleaned
	// up the drained one.
	q := send(e, x, ids, 8)
	e.StepUntil(q.Completed)
	if x.pending() != 0 {
		t.Fatalf("pending = %d", x.pending())
	}
}
