package pard

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/iodev"
	"repro/internal/sim"
)

// ClusterConfig shapes a spine/leaf cluster of PARD servers: the
// paper's §8 data-center setting, where DS-ids propagate past the
// server edge and an SDN-style controller programs both the machines
// and the fabric between them.
type ClusterConfig struct {
	// Racks and ServersPerRack fix the cluster size; each rack sits
	// behind one leaf switch.
	Racks          int
	ServersPerRack int
	// Spines is the spine switch count; 0 means 1. Each leaf links to
	// every spine; the spine carrying a rack's traffic is the static
	// assignment Topology.SpineFor, so forwarding is deterministic.
	Spines int
	// RackLatency is the intra-rack latency: server↔server ring links
	// and server↔leaf uplinks. 0 means DefaultLinkLatency. Racks are
	// never split across shards, so it may be below the window.
	RackLatency Tick
	// FabricLatency is the leaf↔spine latency and the PDES lookahead
	// window of a sharded run. 0 means cluster.DefaultFabricLatency.
	FabricLatency Tick
	// Shards spreads racks over PDES shards (rack r on shard r mod
	// Shards); 0 means one shard per rack, 1 runs sequentially.
	Shards int
	// Workers bounds the shard-driving goroutine pool; 0 means
	// GOMAXPROCS. Never affects simulation results.
	Workers int
	// Window selects the PDES horizon scheme (default
	// sim.AdaptiveWindows); digest-identical either way.
	Window sim.WindowPolicy
	// SwitchBytesPerSec serializes switch egress at that line rate;
	// 0 keeps every switch in passthrough (forward at ingress time).
	SwitchBytesPerSec uint64
	// Server is the per-server hardware configuration.
	Server Config
}

// Cluster is racks of PARD servers behind a spine/leaf fabric, sharded
// over a conservative-PDES shard group (one shard per rack by
// default), with a federated cluster.Controller owning every server's
// PRM. Intra-rack traffic rides the rack ring exactly as in Rack;
// cross-rack frames climb server → leaf → spine → leaf → server
// through DS-id-tagged switch queues. Digest() extends StateDigest
// with the switch planes, and is byte-identical across shard counts
// and repeated runs.
type Cluster struct {
	Topo    cluster.Topology
	Group   *sim.ShardGroup
	Servers []*System
	// Leaves[r] is rack r's leaf; SpineSwitches[i] the i-th spine (on
	// shard 0's engine).
	Leaves        []*fabric.Switch
	SpineSwitches []*fabric.Switch
	// Controller federates the per-server PRMs and the switches.
	Controller *cluster.Controller

	window    Tick
	hostPort  [][]int // [rack][srv]   leaf port facing that server
	leafTrunk [][]int // [rack][spine] leaf port toward that spine
	spinePort [][]int // [spine][rack] spine port toward that leaf
}

// hostWire delivers a switch egress frame into a server NIC on the
// same engine — the leaf-side end of a server↔leaf uplink.
type hostWire struct {
	eng  *sim.Engine
	peer *iodev.NIC
}

func (w hostWire) Deliver(delay sim.Tick, flowID, dstMAC uint64, bytes uint32) {
	peer := w.peer
	w.eng.Schedule(delay, func() { peer.ReceiveFlow(flowID, dstMAC, bytes) })
}

// crossIngressWire carries a frame into a switch on another shard
// through the deterministic mailbox runtime, mirroring crossWire for
// NIC peers. Deliver runs on the sending shard's engine.
type crossIngressWire struct {
	src  *sim.Shard
	dst  int
	sw   *fabric.Switch
	port int
}

func (w *crossIngressWire) Deliver(delay sim.Tick, flowID, dstMAC uint64, bytes uint32) {
	sw, port := w.sw, w.port
	w.src.Send(w.dst, delay, func() { sw.Ingress(port, flowID, dstMAC, bytes) })
}

// NewCluster builds and wires the cluster. All topology problems —
// including a fabric latency below the PDES lookahead window — are
// reported here, at wiring time, with the minimum named.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	topo := cluster.Topology{
		Racks:          cfg.Racks,
		ServersPerRack: cfg.ServersPerRack,
		Spines:         cfg.Spines,
		RackLatency:    cfg.RackLatency,
		FabricLatency:  cfg.FabricLatency,
		Shards:         cfg.Shards,
	}
	if topo.RackLatency == 0 {
		topo.RackLatency = DefaultLinkLatency
	}
	topo.Normalize()
	window := topo.FabricLatency
	if err := topo.Validate(window); err != nil {
		return nil, err
	}

	c := &Cluster{
		Topo:   topo,
		Group:  sim.NewShardGroup(topo.Shards, window, cfg.Workers, sim.WithQueue(cfg.Server.Queue)),
		window: window,
	}
	c.Group.SetWindowPolicy(cfg.Window)
	// The only cross-shard channels are leaf<->spine trunks (spines live
	// on shard 0), all at the fabric latency; register them so adaptive
	// horizons know the exact channel graph.
	for r := 0; r < topo.Racks; r++ {
		if shard := topo.ShardOfRack(r); shard != 0 {
			c.Group.SetLookahead(shard, 0, topo.FabricLatency)
			c.Group.SetLookahead(0, shard, topo.FabricLatency)
		}
	}

	// Servers, rack by rack, each rack whole on its shard's engine.
	for r := 0; r < topo.Racks; r++ {
		eng := c.Group.Shard(topo.ShardOfRack(r)).Engine()
		for s := 0; s < topo.ServersPerRack; s++ {
			c.Servers = append(c.Servers, NewSystemOn(cfg.Server, eng, core.NewIDSource()))
		}
	}

	// Intra-rack server rings, as in Rack.ConnectRing, when a rack has
	// peers to ring.
	for r := 0; r < topo.Racks; r++ {
		base := r * topo.ServersPerRack
		if topo.ServersPerRack < 2 {
			continue
		}
		err := cluster.ConnectRing(topo.ServersPerRack, func(i, j int) error {
			return c.Servers[base+i].NIC.ConnectPeerLatency(c.Servers[base+j].NIC, topo.RackLatency)
		})
		if err != nil {
			return nil, err
		}
	}

	// Leaves: one per rack on the rack's engine, one host port per
	// server, with the server's NIC uplinked back to the port.
	swcfg := func(name string) fabric.Config {
		return fabric.Config{Name: name, BytesPerSec: cfg.SwitchBytesPerSec}
	}
	c.hostPort = make([][]int, topo.Racks)
	for r := 0; r < topo.Racks; r++ {
		eng := c.Group.Shard(topo.ShardOfRack(r)).Engine()
		leaf := fabric.New(eng, swcfg(topo.LeafName(r)))
		c.Leaves = append(c.Leaves, leaf)
		for s := 0; s < topo.ServersPerRack; s++ {
			srv := c.Servers[r*topo.ServersPerRack+s]
			p := leaf.AddPort(fabric.PortHost, hostWire{eng: eng, peer: srv.NIC}, topo.RackLatency)
			c.hostPort[r] = append(c.hostPort[r], p)
			srv.NIC.ConnectWire(fabric.IngressWire{Switch: leaf, Port: p}, topo.RackLatency)
		}
	}

	// Spines on shard 0's engine, full bipartite leaf↔spine wiring.
	// Same-shard pairs use direct ingress wires; cross-shard pairs go
	// through the mailbox runtime at the fabric latency (= window).
	spineEng := c.Group.Shard(0).Engine()
	c.leafTrunk = make([][]int, topo.Racks)
	c.spinePort = make([][]int, topo.Spines)
	for i := 0; i < topo.Spines; i++ {
		c.SpineSwitches = append(c.SpineSwitches, fabric.New(spineEng, swcfg(topo.SpineName(i))))
	}
	for r := 0; r < topo.Racks; r++ {
		leaf, shard := c.Leaves[r], topo.ShardOfRack(r)
		for i, spine := range c.SpineSwitches {
			// Ports are created pairwise so each end knows the other's
			// index before wiring.
			up := leaf.NumPorts()
			down := spine.NumPorts()
			var toSpine, toLeaf iodev.Wire
			if shard == 0 {
				toSpine = fabric.IngressWire{Switch: spine, Port: down}
				toLeaf = fabric.IngressWire{Switch: leaf, Port: up}
			} else {
				toSpine = &crossIngressWire{src: c.Group.Shard(shard), dst: 0, sw: spine, port: down}
				toLeaf = &crossIngressWire{src: c.Group.Shard(0), dst: shard, sw: leaf, port: up}
			}
			if got := leaf.AddPort(fabric.PortTrunk, toSpine, topo.FabricLatency); got != up {
				return nil, fmt.Errorf("pard: leaf %d trunk port drifted", r)
			}
			if got := spine.AddPort(fabric.PortTrunk, toLeaf, topo.FabricLatency); got != down {
				return nil, fmt.Errorf("pard: spine %d port drifted", i)
			}
			c.leafTrunk[r] = append(c.leafTrunk[r], up)
			c.spinePort[i] = append(c.spinePort[i], down)
		}
	}

	// The federated controller, clocked by shard 0.
	c.Controller = cluster.NewController(spineEng, topo)
	for gi, srv := range c.Servers {
		name := topo.ServerName(topo.RackOf(gi), gi%topo.ServersPerRack)
		err := c.Controller.AttachServer(cluster.Server{
			Name:      name,
			Firmware:  srv.Firmware,
			Telemetry: srv.Telemetry,
			Journal:   srv.Journal,
		})
		if err != nil {
			return nil, err
		}
	}
	for r, leaf := range c.Leaves {
		if err := c.Controller.AttachSwitch(topo.LeafName(r), leaf); err != nil {
			return nil, err
		}
	}
	for i, spine := range c.SpineSwitches {
		if err := c.Controller.AttachSwitch(topo.SpineName(i), spine); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Server returns the global server index's system.
func (c *Cluster) Server(gi int) *System { return c.Servers[gi] }

// BindServerMAC programs the whole fabric's forwarding toward one
// server: its own leaf delivers on the host port, every other leaf
// points at the spine assigned to the destination rack, and every
// spine points at the destination leaf.
func (c *Cluster) BindServerMAC(mac uint64, server int) error {
	if server < 0 || server >= len(c.Servers) {
		return fmt.Errorf("pard: no server %d in cluster", server)
	}
	rack := c.Topo.RackOf(server)
	local := server % c.Topo.ServersPerRack
	for r, leaf := range c.Leaves {
		var port int
		if r == rack {
			port = c.hostPort[r][local]
		} else {
			port = c.leafTrunk[r][c.Topo.SpineFor(rack)]
		}
		if err := leaf.BindMAC(mac, port); err != nil {
			return err
		}
	}
	for i, spine := range c.SpineSwitches {
		if err := spine.BindMAC(mac, c.spinePort[i][rack]); err != nil {
			return err
		}
	}
	return nil
}

// BindFlow classifies a flow id to a DS-id on every switch, so the
// fabric's per-DS-id accounting, weights and rate caps see the flow.
func (c *Cluster) BindFlow(flowID uint64, ds DSID) {
	for _, leaf := range c.Leaves {
		leaf.BindFlow(flowID, ds)
	}
	for _, spine := range c.SpineSwitches {
		spine.BindFlow(flowID, ds)
	}
}

// Run advances the whole cluster by d through barrier windows.
func (c *Cluster) Run(d Tick) { c.Group.Run(d) }

// Digest extends StateDigest over the fabric: every switch's control
// plane tables plus its forward/drop counters. Byte-identical across
// shard counts, worker counts and repeated runs.
func (c *Cluster) Digest() string {
	var b strings.Builder
	b.WriteString(StateDigest(c.Servers))
	for _, sw := range c.Switches() {
		fmt.Fprintf(&b, "switch %s\n", sw.Name())
		digestPlane(&b, sw.Plane())
		fmt.Fprintf(&b, "  fwd=%d dropped=%d\n", sw.Forwarded, sw.Dropped)
	}
	return b.String()
}

// Switches returns every switch, leaves then spines.
func (c *Cluster) Switches() []*fabric.Switch {
	out := make([]*fabric.Switch, 0, len(c.Leaves)+len(c.SpineSwitches))
	out = append(out, c.Leaves...)
	return append(out, c.SpineSwitches...)
}

// CrossRackFrames sums frames forwarded by the spines — every one of
// which crossed racks (leaves count local uplink traffic too).
func (c *Cluster) CrossRackFrames() uint64 {
	var n uint64
	for _, sp := range c.SpineSwitches {
		n += sp.Forwarded
	}
	return n
}

// ProvisionClusterWorkload installs the standard cluster workload: per
// server one "svc" LDom (MAC 0xA0+gi) running STREAM, fabric-wide MAC
// bindings, and a pump of `frames` flow-tagged 1500-byte frames toward
// the same-position server in the next rack — all traffic crosses the
// fabric. Pump phases and periods are de-phased per server so
// deliveries never tie at one receiver (DESIGN.md §11), keeping the
// digest shard-count-invariant.
func ProvisionClusterWorkload(c *Cluster, frames int) error {
	if c.Topo.Racks < 2 {
		return fmt.Errorf("pard: cluster workload needs at least 2 racks, have %d (use ProvisionScalingWorkload for one rack)", c.Topo.Racks)
	}
	n := len(c.Servers)
	lds := make([]*LDom, n)
	for gi, s := range c.Servers {
		ld, err := s.CreateLDom(LDomConfig{
			Name: "svc", Cores: []int{0}, MemBase: 0,
			MAC: uint64(0xA0 + gi), NICBuf: 0x1000,
		})
		if err != nil {
			return err
		}
		lds[gi] = ld
		if err := c.BindServerMAC(uint64(0xA0+gi), gi); err != nil {
			return err
		}
		s.RunWorkload(0, NewSTREAM(uint64(gi)))
	}
	spr := c.Topo.ServersPerRack
	for gi, s := range c.Servers {
		dst := ((c.Topo.RackOf(gi)+1)%c.Topo.Racks)*spr + gi%spr
		flow := uint64(200 + gi)
		if err := c.Servers[dst].NIC.BindFlow(flow, lds[dst].DSID); err != nil {
			return err
		}
		c.BindFlow(flow, lds[dst].DSID)
		s, ld, mac := s, lds[gi], uint64(0xA0+dst)
		sent := 0
		var pump func()
		pump = func() {
			s.NIC.SendFrame(ld.DSID, mac, flow, 0x4000, 1500)
			if sent++; sent < frames {
				s.Engine.Schedule(29*Microsecond+Tick(gi)*1709*Nanosecond, pump)
			}
		}
		s.Engine.At(3*Microsecond+Tick(gi)*977*Nanosecond, pump)
	}
	return nil
}
