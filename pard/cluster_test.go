package pard

import (
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
)

// TestClusterOneRackMatchesBareRack: a 1-rack cluster behind a
// passthrough leaf/spine is byte-identical — per-server state digest —
// to the bare Rack running the same workload. The fabric only ever
// receives broadcast copies it drops (unknown MACs, split horizon), so
// the servers cannot tell the switches exist.
func TestClusterOneRackMatchesBareRack(t *testing.T) {
	want := sequentialRackDigest(t, 4)

	c, err := NewCluster(ClusterConfig{
		Racks: 1, ServersPerRack: 4, Shards: 1, Server: equivConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	provisionEquivWorkload(t, c.Servers)
	c.Run(equivRun)

	if got := StateDigest(c.Servers); got != want {
		t.Errorf("1-rack cluster digest differs from bare rack: %s", firstDiff(want, got))
	}
	// The equivalence is non-vacuous only if the leaf actually saw (and
	// dropped) the servers' broadcast copies.
	if c.Leaves[0].Dropped == 0 {
		t.Error("leaf saw no traffic; equivalence test is vacuous")
	}
}

// clusterDigest builds the reference 4-rack × 2-server cluster, runs
// the standard cross-rack workload and returns the full digest
// (servers + switches).
func clusterDigest(t *testing.T, shards, workers int) string {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Racks: 4, ServersPerRack: 2, Shards: shards, Workers: workers,
		Server: equivConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ProvisionClusterWorkload(c, equivFrames); err != nil {
		t.Fatal(err)
	}
	c.Run(equivRun)
	if c.CrossRackFrames() == 0 {
		t.Fatal("no frames crossed the fabric; cluster workload is vacuous")
	}
	return c.Digest()
}

// TestClusterShardInvariance: the cluster digest — including every
// switch's tables and counters — is byte-identical across shard counts
// and repeated runs.
func TestClusterShardInvariance(t *testing.T) {
	want := clusterDigest(t, 1, 1)
	for _, shards := range []int{2, 4} {
		if got := clusterDigest(t, shards, shards); got != want {
			t.Errorf("shards=%d digest differs from sequential cluster: %s",
				shards, firstDiff(want, got))
		}
	}
	if got := clusterDigest(t, 4, 4); got != want {
		t.Errorf("repeated run not reproducible: %s", firstDiff(want, got))
	}
}

// TestClusterWiringValidation is the satellite-1 regression: link
// latencies below the PDES lookahead window are rejected at wiring
// time with the minimum window named, on both the sharded rack and the
// cluster topology.
func TestClusterWiringValidation(t *testing.T) {
	pr := NewParallelRack(equivConfig(), ParallelRackConfig{Servers: 2, Shards: 2})
	err := pr.ConnectLatency(0, 1, 0)
	if err == nil {
		t.Fatal("zero-latency cross-shard link accepted")
	}
	if !strings.Contains(err.Error(), pr.LinkLatency().String()) ||
		!strings.Contains(err.Error(), "lookahead window") {
		t.Errorf("wiring error does not name the minimum window: %v", err)
	}

	if _, err := NewCluster(ClusterConfig{Racks: 0}); err == nil {
		t.Error("0-rack cluster accepted")
	}
	_, err = NewCluster(ClusterConfig{Racks: 2, ServersPerRack: 1, Shards: 3})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("bad shard count error = %v", err)
	}
}

// intentGateSrc is the reference intent applied in the compilation
// gate; memtierManualSrc is its hand-written per-server equivalent.
const intentGateSrc = `
intent memtier {
    target miss_rate <= 30% on llc;
    protect ldom svc on cpa*;
    fabric weight ldom svc = 4;
}
`

const memtierManualSrc = `
cpa llc ldom svc: when miss_rate > 30% => waymask = 0xff00, others waymask = 0x00ff
`

// gateCluster builds the reference cluster with an LLC small enough
// that the STREAM workload's miss rate crosses the intent's envelope.
func gateCluster(t *testing.T) *Cluster {
	t.Helper()
	scfg := DefaultConfig()
	scfg.Cores = 2
	scfg.LLC.SizeBytes = 256 * 1024
	scfg.SampleInterval = 50 * Microsecond
	c, err := NewCluster(ClusterConfig{
		Racks: 4, ServersPerRack: 2, Server: scfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ProvisionClusterWorkload(c, equivFrames); err != nil {
		t.Fatal(err)
	}
	return c
}

// gateTrajectory runs the gate cluster in chunks after install,
// recording the digest after each chunk.
func gateTrajectory(t *testing.T, install func(*Cluster)) ([]string, *Cluster) {
	t.Helper()
	c := gateCluster(t)
	install(c)
	var digests []string
	for i := 0; i < 5; i++ {
		c.Run(400 * Microsecond)
		digests = append(digests, c.Digest())
	}
	return digests, c
}

// TestClusterIntentMatchesHandWrittenPolicies is the acceptance gate:
// on the reference 4-rack topology, applying the memtier intent
// through the federated controller produces per-server policies that
// (a) compile finding-free, and (b) drive the cluster through a digest
// trajectory byte-identical to hand-loading the equivalent per-server
// policy and hand-programming the switch weights.
func TestClusterIntentMatchesHandWrittenPolicies(t *testing.T) {
	viaIntent, ic := gateTrajectory(t, func(c *Cluster) {
		f, err := policy.Parse("memtier.pard", intentGateSrc)
		if err != nil {
			t.Fatal(err)
		}
		cis, err := c.Controller.CompileIntents(f, policy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(cis) != 1 || len(cis[0].Policies) != len(c.Servers) {
			t.Fatalf("compiled %d intents over %d servers", len(cis), len(cis[0].Policies))
		}
		// Finding-free: pardcheck's linter over every emitted program.
		for _, sp := range cis[0].Policies {
			if issues := policy.Lint(sp.Program); len(issues) != 0 {
				t.Fatalf("emitted policy for %s has findings: %v", sp.Server, issues)
			}
		}
		if err := c.Controller.ApplyIntent(cis[0]); err != nil {
			t.Fatal(err)
		}
	})

	byHand, _ := gateTrajectory(t, func(c *Cluster) {
		for _, srv := range c.Servers {
			if err := srv.ReloadPolicy("manual-memtier", memtierManualSrc); err != nil {
				t.Fatal(err)
			}
		}
		for _, sw := range c.Switches() {
			sw.Plane().CreateRow(0)
			sw.Plane().SetParam(0, "weight", 4)
		}
	})

	for i := range viaIntent {
		if viaIntent[i] != byHand[i] {
			t.Fatalf("trajectories diverge at chunk %d: %s",
				i, firstDiff(byHand[i], viaIntent[i]))
		}
	}

	// The gate is vacuous unless the lowered guard actually fired.
	fired := uint64(0)
	for _, s := range ic.Servers {
		fired += s.Firmware.TriggersHandled
	}
	if fired == 0 {
		t.Fatal("intent guard never fired; shrink the LLC or lengthen the run")
	}
	// And the rollout is visible in the federation surfaces.
	if len(ic.Controller.Applied) != 1 || ic.Controller.Applied[0] != "memtier" {
		t.Fatalf("controller Applied = %v", ic.Controller.Applied)
	}
	txt, err := ic.Controller.JournalText("rack0-srv0", 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "cluster:memtier") {
		t.Fatalf("server journal lacks cluster origin:\n%s", txt)
	}
	ic.Controller.Collect()
	top := ic.Controller.TopText("cluster")
	if !strings.Contains(top, "cluster.prm.triggers_handled") {
		t.Fatalf("aggregated series missing:\n%s", top)
	}
}

// TestClusterPolicyAndQueueInvariance: the full cluster digest (servers
// + switch tables/counters) must be byte-identical when the PDES window
// policy flips to lockstep and when every shard engine runs on the
// calendar queue — both knobs are pure mechanism, never schedule.
func TestClusterPolicyAndQueueInvariance(t *testing.T) {
	want := clusterDigest(t, 2, 2)

	run := func(mut func(*ClusterConfig)) string {
		cc := ClusterConfig{Racks: 4, ServersPerRack: 2, Shards: 2, Workers: 2, Server: equivConfig()}
		mut(&cc)
		c, err := NewCluster(cc)
		if err != nil {
			t.Fatal(err)
		}
		if err := ProvisionClusterWorkload(c, equivFrames); err != nil {
			t.Fatal(err)
		}
		c.Run(equivRun)
		return c.Digest()
	}

	if got := run(func(cc *ClusterConfig) { cc.Window = sim.LockstepWindows }); got != want {
		t.Errorf("lockstep cluster digest differs from adaptive: %s", firstDiff(want, got))
	}
	if got := run(func(cc *ClusterConfig) { cc.Server.Queue = sim.Calendar }); got != want {
		t.Errorf("calendar-queue cluster digest differs from heap: %s", firstDiff(want, got))
	}
}
