package pard

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/iodev"
	"repro/internal/prm"
	"repro/internal/sim"
	"repro/internal/xbar"
)

// Config describes a PARD server. DefaultConfig reproduces the paper's
// simulated machine (Table 2).
type Config struct {
	// Cores is the number of CPU cores; CorePeriod their clock period
	// in ticks (500 = 2 GHz).
	Cores      int
	CorePeriod sim.Tick
	// CoreWindow is the per-core memory-level-parallelism window
	// (cpu.Core.Window). 0 keeps the calibrated blocking cores.
	CoreWindow int

	L1  cache.Config
	LLC cache.Config
	Mem dram.Config
	IDE iodev.IDEConfig
	NIC iodev.NICConfig
	PRM prm.Config

	// Crossbar inserts the modeled L1<->LLC interconnect with its own
	// control plane (mounted as cpa5). Off by default: the paper's
	// simulated configuration connects cores to the LLC directly, and
	// the Figure 8/9 calibration assumes that topology.
	Crossbar    bool
	CrossbarCfg xbar.Config

	// ProbeMemory inserts a trace probe in front of the memory
	// controller (System.MemProbe), observing every LLC fill,
	// writeback and DMA packet — pardctl's `trace` command.
	ProbeMemory bool

	// TraceSample enables the ICN flight recorder (System.Recorder),
	// sampling one packet in TraceSample by packet ID (rounded up to a
	// power of two; 1 samples everything, 0 disables). Sampled packets
	// get per-hop queue/service spans, per-(hop, DS-id) latency
	// histograms, lat_{p50,p99}_{queue,service} statistics files in the
	// PRM tree, and Perfetto export via Recorder.WritePerfetto.
	TraceSample uint64

	// SampleInterval is the statistics window used by all control
	// planes when their own configs leave it zero.
	SampleInterval sim.Tick

	// Telemetry configures the time-series registry and audit journal.
	// Enabled by default; scraping and journaling never perturb
	// simulation state (StateDigest is identical either way).
	Telemetry TelemetryConfig

	// Queue selects the event-queue discipline of every engine this
	// config builds (NewSystem, Rack, ParallelRack, Cluster shards).
	// The default sim.Heap is fastest for small pending populations;
	// sim.Calendar wins once an engine holds ~100k+ pending events
	// (BENCH.json engine_calendar). Either choice is digest-identical.
	Queue sim.QueueKind
}

// TelemetryConfig tunes the telemetry plane.
type TelemetryConfig struct {
	// Disable turns the registry and journal off entirely.
	Disable bool
	// Interval is the scrape period in ticks; 0 inherits SampleInterval,
	// so stat series sample on the same cadence the planes publish.
	Interval sim.Tick
	// SeriesCapacity is samples retained per series (0 = 512).
	SeriesCapacity int
	// JournalCapacity is audit events retained (0 = 1024).
	JournalCapacity int
}

// DefaultConfig returns Table 2's parameters:
//
//	CPU      4 cores, 2 GHz
//	L1       64 KB 2-way per core, hit = 2 cycles
//	LLC      4 MB 16-way shared, hit = 20 cycles
//	DRAM     DDR3-1600 11-11-11, 1 channel, 2 ranks, 8 banks/rank, 1 KB rows
//	Disks    4-channel IDE controller, 8 disks
//	PRM      100 MHz firmware core, 5 control plane adaptors
func DefaultConfig() Config {
	return Config{
		Cores:      4,
		CorePeriod: 500,
		L1: cache.Config{
			SizeBytes:  64 * 1024,
			Ways:       2,
			BlockSize:  64,
			HitLatency: 2,
		},
		LLC: cache.Config{
			Name:         "llc",
			SizeBytes:    4 << 20,
			Ways:         16,
			BlockSize:    64,
			HitLatency:   20,
			ControlPlane: true,
			TriggerSlots: 64,
		},
		Mem: dram.DefaultConfig(),
		IDE: iodev.DefaultIDEConfig(),
		NIC: iodev.DefaultNICConfig(),
		PRM: prm.Config{HandlerLatency: 10 * sim.Microsecond},

		SampleInterval: 100 * sim.Microsecond,
	}
}

// fillDefaults normalizes a user-supplied config.
func (c *Config) fillDefaults() {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.CorePeriod == 0 {
		c.CorePeriod = 500
	}
	if c.L1.SizeBytes == 0 {
		c.L1 = DefaultConfig().L1
	}
	if c.LLC.SizeBytes == 0 {
		c.LLC = DefaultConfig().LLC
	}
	if c.Mem.TCK == 0 {
		c.Mem = dram.DefaultConfig()
	}
	if c.IDE.BytesPerSec == 0 {
		c.IDE = iodev.DefaultIDEConfig()
	}
	if c.NIC.BytesPerSec == 0 {
		c.NIC = iodev.DefaultNICConfig()
	}
	if !c.Telemetry.Disable {
		if c.Telemetry.Interval == 0 {
			c.Telemetry.Interval = c.SampleInterval
		}
		if c.Telemetry.SeriesCapacity == 0 {
			c.Telemetry.SeriesCapacity = 512
		}
		if c.Telemetry.JournalCapacity == 0 {
			c.Telemetry.JournalCapacity = 1024
		}
	}
	if c.SampleInterval != 0 {
		if c.LLC.SampleInterval == 0 {
			c.LLC.SampleInterval = c.SampleInterval
		}
		if c.Mem.SampleInterval == 0 {
			c.Mem.SampleInterval = c.SampleInterval
		}
		if c.IDE.SampleInterval == 0 {
			c.IDE.SampleInterval = c.SampleInterval
		}
		if c.NIC.SampleInterval == 0 {
			c.NIC.SampleInterval = c.SampleInterval
		}
	}
}
