package pard

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Dispatch executes one operator console line against the system:
// either a firmware shell command (cat/echo/ls/tree/pardtrigger/ldoms/
// log) or a platform command:
//
//	create <name> <coreID> [priority]
//	workload <coreID> stream|flush|memcached|dd|lbm|leslie3d
//	run <milliseconds>
//	policy validate <file.pard>
//	policy apply <file.pard>
//	stats
//	trace
//	telemetry
//	top [series-prefix]
//	journal [n]
//	help
//
// plus the firmware's own `policy [show|explain|unload]` subcommands.
//
// pardctl uses it on stdin; the Console server exposes it over TCP
// (the PRM's Ethernet adaptor).
func Dispatch(sys *System, line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	switch fields[0] {
	case "help":
		return "firmware: cat echo ls tree pardtrigger policy ldoms log\n" +
			"platform: create <name> <core> [prio] | workload <core> <kind> | run <ms> | policy validate|apply <file> | stats | trace | telemetry | top [prefix] | journal [n] | exit", nil

	case "create":
		if len(fields) < 3 {
			return "", fmt.Errorf("usage: create <name> <coreID> [priority]")
		}
		coreID, err := strconv.Atoi(fields[2])
		if err != nil {
			return "", err
		}
		if coreID < 0 || coreID >= len(sys.Cores) {
			return "", fmt.Errorf("no core %d", coreID)
		}
		var prio uint64
		if len(fields) > 3 {
			prio, err = strconv.ParseUint(fields[3], 10, 64)
			if err != nil {
				return "", err
			}
		}
		ld, err := sys.CreateLDom(LDomConfig{
			Name: fields[1], Cores: []int{coreID},
			MemBase: uint64(coreID) * (2 << 30), Priority: prio, RowBuf: prio,
		})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("created ldom%d on core %d", ld.DSID, coreID), nil

	case "workload":
		if len(fields) != 3 {
			return "", fmt.Errorf("usage: workload <coreID> stream|flush|memcached|dd|lbm|leslie3d")
		}
		coreID, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", err
		}
		if coreID < 0 || coreID >= len(sys.Cores) {
			return "", fmt.Errorf("no core %d", coreID)
		}
		gen, err := namedWorkload(fields[2], coreID)
		if err != nil {
			return "", err
		}
		if sys.Cores[coreID].Running() {
			return "", fmt.Errorf("core %d already running a workload", coreID)
		}
		sys.RunWorkload(coreID, gen)
		return fmt.Sprintf("core %d running %s", coreID, fields[2]), nil

	case "run":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: run <milliseconds>")
		}
		ms, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "", err
		}
		sys.Run(Millisecond * Tick(ms))
		return fmt.Sprintf("advanced %dms (now %v)", ms, sys.Engine.Now()), nil

	case "stats":
		var b strings.Builder
		for ds, ld := range sys.Firmware.LDoms() {
			fmt.Fprintf(&b, "ldom%d (%s): LLC %.2f MB, mem %d MB/s, miss %d.%d%%\n",
				ds, ld.Spec.Name,
				float64(sys.LLCOccupancyBytes(ds))/(1<<20),
				sys.MemBandwidthMBs(ds),
				sys.LLC.MissRate(ds)/10, sys.LLC.MissRate(ds)%10)
		}
		fmt.Fprintf(&b, "server CPU utilization: %.0f%%", 100*sys.CPUUtilization())
		return b.String(), nil

	case "policy":
		// File-based subcommands live here (the console can read the
		// operator's filesystem; the firmware cannot). Everything else
		// — list/show/explain/unload — falls through to the firmware.
		if len(fields) == 3 && fields[1] == "validate" {
			issues, err := sys.LintPolicyFile(fields[2])
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, issue := range issues {
				fmt.Fprintf(&b, "warning: %s\n", issue)
			}
			fmt.Fprintf(&b, "%s: ok", fields[2])
			return b.String(), nil
		}
		if len(fields) == 3 && fields[1] == "apply" {
			if err := sys.ApplyPolicyFile(fields[2]); err != nil {
				return "", err
			}
			return fmt.Sprintf("applied policy %q", policyNameFromPath(fields[2])), nil
		}
		return sys.Sh(line)

	case "telemetry":
		if sys.Telemetry == nil {
			return "", fmt.Errorf("telemetry disabled (Config.Telemetry.Disable)")
		}
		return telemetry.SummaryText(sys.Telemetry, sys.Journal), nil

	case "top":
		if sys.Telemetry == nil {
			return "", fmt.Errorf("telemetry disabled (Config.Telemetry.Disable)")
		}
		prefix := ""
		if len(fields) > 1 {
			prefix = fields[1]
		}
		return telemetry.TopText(sys.Telemetry, prefix), nil

	case "journal":
		if sys.Journal == nil {
			return "", fmt.Errorf("telemetry disabled (Config.Telemetry.Disable)")
		}
		n := 20
		if len(fields) > 1 {
			var err error
			n, err = strconv.Atoi(fields[1])
			if err != nil {
				return "", fmt.Errorf("usage: journal [n]")
			}
		}
		return telemetry.JournalText(sys.Journal, n), nil

	case "trace":
		if sys.Recorder == nil && sys.MemProbe == nil {
			return "", fmt.Errorf("tracing not enabled (Config.TraceSample or Config.ProbeMemory)")
		}
		var parts []string
		if sys.Recorder != nil {
			parts = append(parts, strings.TrimRight(sys.Recorder.BreakdownTable(), "\n"))
		}
		if sys.MemProbe != nil {
			parts = append(parts, strings.TrimRight(sys.MemProbe.Summary(), "\n"))
		}
		return strings.Join(parts, "\n"), nil
	}
	return sys.Sh(line)
}

// namedWorkload maps console workload names to generators.
func namedWorkload(name string, coreID int) (Workload, error) {
	switch name {
	case "stream":
		return NewSTREAM(0), nil
	case "flush":
		return &workload.CacheFlush{Base: 1 << 30, Footprint: 16 << 20, Seed: int64(coreID) + 1}, nil
	case "memcached":
		return NewMemcached(MemcachedConfig{
			RPS: 20000, ComputeCycles: 66000, Accesses: 800,
			FootprintBytes: 2304 << 10, Seed: 42,
		}), nil
	case "dd":
		return &workload.DiskCopy{TotalBytes: 512 << 20, ChunkBytes: 64 << 10, Write: true, Loop: true, Compute: 200}, nil
	case "lbm":
		return NewLBM(0), nil
	case "leslie3d":
		return NewLeslie3d(0), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}
