package pard

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// StateDigest renders every server's architectural end state as a
// deterministic multi-line string: control-plane parameter and
// statistics tables, device counters, PRM counters, and the flight
// recorder's aggregate plus a hash over its archived spans. Two runs of
// the same workload — sequential or sharded, any worker count — must
// produce byte-identical digests; the equivalence suite and pardbench's
// digest lines are built on this.
func StateDigest(servers []*System) string {
	var b strings.Builder
	for i, s := range servers {
		fmt.Fprintf(&b, "server %d\n", i)
		planes := []*core.Plane{
			s.LLC.Plane(), s.Mem.Plane(), s.Bridge.Plane(), s.IDE.Plane(), s.NIC.Plane(),
		}
		if s.Xbar != nil {
			planes = append(planes, s.Xbar.Plane())
		}
		for _, p := range planes {
			digestPlane(&b, p)
		}
		fmt.Fprintf(&b, "  mem served=%d\n", s.Mem.Served)
		fmt.Fprintf(&b, "  nic rx=%d tx=%d dropped=%d\n",
			s.NIC.RxFrames, s.NIC.TxFrames, s.NIC.DroppedFrames)
		fmt.Fprintf(&b, "  intr %v\n", s.InterruptsByCore)
		fmt.Fprintf(&b, "  prm suppressed=%d\n", s.Firmware.TriggersSuppressed)
		if s.Recorder != nil {
			fmt.Fprintf(&b, "  trace finished=%d dropped=%d spans=%#x\n",
				s.Recorder.Finished(), s.Recorder.DroppedSpans(),
				traceHash(s.Recorder.Traces()))
			b.WriteString(indent(s.Recorder.BreakdownTable(), "  "))
		}
	}
	return b.String()
}

// digestPlane appends one control plane's parameter and statistics
// tables, rows in DS-id order, columns in layout order.
func digestPlane(b *strings.Builder, p *core.Plane) {
	fmt.Fprintf(b, "  plane %s\n", p.Ident())
	digestTable(b, "param", p.Params())
	digestTable(b, "stat", p.Stats())
}

func digestTable(b *strings.Builder, label string, t *core.Table) {
	cols := t.Columns()
	for _, ds := range t.Rows() {
		fmt.Fprintf(b, "    %s %v", label, ds)
		for ci, c := range cols {
			v, _ := t.Get(ds, ci)
			fmt.Fprintf(b, " %s=%d", c.Name, v)
		}
		b.WriteByte('\n')
	}
}

// traceHash folds every archived span's fields into one FNV-1a value,
// so "trace spans byte-identical" is checkable without rendering tens
// of thousands of lines.
func traceHash(traces []trace.PacketTrace) uint64 {
	h := fnv.New64a()
	for i := range traces {
		t := &traces[i]
		fmt.Fprintf(h, "%d|%d|%d|%#x|%d|%d|%d|%d|%v|",
			t.ID, t.Kind, t.DSID, t.Addr, t.Size, t.Src, t.Issue, t.End, t.Truncated)
		for _, s := range t.Spans() {
			fmt.Fprintf(h, "%d:%d:%d:%d|", s.Hop, s.Enter, s.Service, s.Done)
		}
	}
	return h.Sum64()
}

func indent(s, prefix string) string {
	if s == "" {
		return s
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
