package pard_test

import (
	"fmt"

	"repro/pard"
)

// ExampleNewSystem boots the default server and lists its control
// planes through the firmware's device file tree.
func ExampleNewSystem() {
	sys := pard.NewSystem(pard.DefaultConfig())
	fmt.Println(sys.Firmware.MustSh("ls /sys/cpa"))
	// Output:
	// cpa0/
	// cpa1/
	// cpa2/
	// cpa3/
	// cpa4/
}

// ExampleSystem_CreateLDom partitions the server and reads back the
// memory control plane's address map for the new LDom.
func ExampleSystem_CreateLDom() {
	sys := pard.NewSystem(pard.DefaultConfig())
	ld, err := sys.CreateLDom(pard.LDomConfig{
		Name: "web", Cores: []int{0}, MemBase: 1 << 30, Priority: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("ds:", ld.DSID)
	fmt.Println("addr_base:", sys.Firmware.MustSh("cat /sys/cpa/cpa1/ldoms/ldom0/parameters/addr_base"))
	fmt.Println("priority:", sys.Firmware.MustSh("cat /sys/cpa/cpa1/ldoms/ldom0/parameters/priority"))
	// Output:
	// ds: ds0
	// addr_base: 1073741824
	// priority: 1
}

// ExampleSystem_Sh shows the operator interface: way-partitioning the
// LLC with the paper's echo command and installing a trigger rule.
func ExampleSystem_Sh() {
	sys := pard.NewSystem(pard.DefaultConfig())
	sys.CreateLDom(pard.LDomConfig{Name: "svc", Cores: []int{0}})

	sys.Firmware.MustSh("echo 0xFF00 > /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
	fmt.Println(sys.Firmware.MustSh("cat /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask"))

	out, _ := sys.Sh("pardtrigger cpa0 -ldom=0 -stats=miss_rate -cond=gt,300 -action=llc_grow_to_half")
	fmt.Println(out)
	// Output:
	// 0xff00
	// installed trigger slot 0 on cpa0: ldom0 miss_rate gt 300 => llc_grow_to_half
}

// ExampleDispatch drives the same console commands pardctl and pardd use.
func ExampleDispatch() {
	sys := pard.NewSystem(pard.DefaultConfig())
	out, _ := pard.Dispatch(sys, "create web 0 1")
	fmt.Println(out)
	out, _ = pard.Dispatch(sys, "run 1")
	fmt.Println(out)
	// Output:
	// created ldom0 on core 0
	// advanced 1ms (now 1.000ms)
}
