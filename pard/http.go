package pard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// NewAPIHandler exposes the telemetry plane over HTTP — pardd's serving
// surface:
//
//	GET /metrics                 Prometheus text exposition (0.0.4)
//	GET /api/v1/series           pard-telemetry/v1 JSON (?prefix= filters)
//	GET /api/v1/journal          pard-journal/v1 JSON (?since=<seq>&limit=<n>)
//	GET /api/v1/journal/stream   NDJSON long-poll of journal events
//
// Every read runs through console.Do, the single executor goroutine
// that owns the simulation, so scrapes are consistent snapshots even
// while operators mutate policy over the console. Handlers render into
// a buffer under Do and write the response outside it, keeping the
// executor unblocked by slow clients.
func NewAPIHandler(sys *System, console *Console) http.Handler {
	mux := http.NewServeMux()

	render := func(w http.ResponseWriter, contentType string, fn func(buf *bytes.Buffer) error) {
		if sys.Telemetry == nil {
			http.Error(w, "telemetry disabled (Config.Telemetry.Disable)", http.StatusServiceUnavailable)
			return
		}
		var buf bytes.Buffer
		var err error
		if doErr := console.Do(func() { err = fn(&buf) }); doErr != nil {
			http.Error(w, doErr.Error(), http.StatusServiceUnavailable)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(buf.Bytes())
	}

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		render(w, "text/plain; version=0.0.4; charset=utf-8", func(buf *bytes.Buffer) error {
			return telemetry.WritePrometheus(buf, sys.Telemetry, sys.Journal)
		})
	})

	mux.HandleFunc("/api/v1/series", func(w http.ResponseWriter, r *http.Request) {
		prefix := r.URL.Query().Get("prefix")
		render(w, "application/json", func(buf *bytes.Buffer) error {
			return telemetry.WriteSeriesJSON(buf, sys.Telemetry, prefix)
		})
	})

	mux.HandleFunc("/api/v1/journal", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		since, err := parseUintParam(q.Get("since"), 0)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		limit64, err := parseUintParam(q.Get("limit"), 0)
		if err != nil {
			http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
			return
		}
		render(w, "application/json", func(buf *bytes.Buffer) error {
			return telemetry.WriteJournalJSON(buf, sys.Telemetry, sys.Journal, since, int(limit64))
		})
	})

	mux.HandleFunc("/api/v1/journal/stream", func(w http.ResponseWriter, r *http.Request) {
		if sys.Journal == nil {
			http.Error(w, "telemetry disabled (Config.Telemetry.Disable)", http.StatusServiceUnavailable)
			return
		}
		since, err := parseUintParam(r.URL.Query().Get("since"), 0)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		streamJournal(w, r, console, sys.Journal, since)
	})

	return mux
}

// streamJournal writes journal events as NDJSON, long-polling for new
// ones until the client disconnects or the console closes. The poll
// cadence is wall-clock (the journal only grows when a console command
// advances the simulation).
func streamJournal(w http.ResponseWriter, r *http.Request, console *Console, j *telemetry.Journal, since uint64) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	var batch []telemetry.Event
	cursor := since
	for {
		batch = batch[:0]
		if err := console.Do(func() {
			batch = j.Since(cursor, batch)
		}); err != nil {
			return
		}
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return
			}
			cursor = ev.Seq + 1
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func parseUintParam(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a non-negative integer", s)
	}
	return v, nil
}
