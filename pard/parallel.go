package pard

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/iodev"
	"repro/internal/sim"
)

// DefaultLinkLatency is the wire latency of a rack link when the caller
// does not choose one: roughly a top-of-rack switch hop. It doubles as
// the sharded coordinator's lookahead window, so larger values mean
// fewer barriers per simulated second.
const DefaultLinkLatency = Microsecond

// ParallelRackConfig shapes the sharded rack.
type ParallelRackConfig struct {
	// Servers is the rack size.
	Servers int
	// Shards is the number of independent engines; server i lives on
	// shard i mod Shards. 1 degenerates to the sequential rack (same
	// construction order, same single engine — byte-identical output).
	// 0 means one shard per server.
	Shards int
	// Workers bounds the goroutine pool driving the shards; 0 means
	// GOMAXPROCS, 1 runs every window inline on the calling goroutine.
	// Worker count never affects simulation results, only wall clock.
	Workers int
	// LinkLatency is the wire latency of every link, and therefore the
	// group's conservative lookahead window. 0 means DefaultLinkLatency.
	LinkLatency Tick
	// Window selects the coordinator's horizon scheme. The zero value
	// is sim.AdaptiveWindows (per-pair channel clocks + inactive-shard
	// skips); sim.LockstepWindows restores the legacy global window.
	// Either policy is digest-identical (parallel_test.go).
	Window sim.WindowPolicy
}

// ParallelRack is Rack sharded across engines: each shard owns a subset
// of the servers (with their own packet pools and trace recorders), the
// coordinator advances global time in windows of one link latency, and
// cross-shard frames travel through the shard runtime's deterministic
// mailboxes. The merged schedule is reproducible for any shard or
// worker count, and matches the sequential Rack — parallel_test.go
// asserts stats, traces and PRM counters are byte-identical.
type ParallelRack struct {
	Group   *sim.ShardGroup
	Servers []*System

	shardOf []int
	window  Tick
	links   map[linkKey]bool
}

// NewParallelRack builds the sharded rack: n servers round-robined over
// the shards, each server constructed whole on its shard's engine.
func NewParallelRack(cfg Config, pc ParallelRackConfig) *ParallelRack {
	if pc.Servers <= 0 {
		panic("pard: rack needs at least one server")
	}
	if pc.Shards <= 0 || pc.Shards > pc.Servers {
		pc.Shards = pc.Servers
	}
	if pc.LinkLatency == 0 {
		pc.LinkLatency = DefaultLinkLatency
	}
	r := &ParallelRack{
		Group:  sim.NewShardGroup(pc.Shards, pc.LinkLatency, pc.Workers, sim.WithQueue(cfg.Queue)),
		window: pc.LinkLatency,
		links:  make(map[linkKey]bool),
	}
	r.Group.SetWindowPolicy(pc.Window)
	for i := 0; i < pc.Servers; i++ {
		shard := i % pc.Shards
		r.shardOf = append(r.shardOf, shard)
		eng := r.Group.Shard(shard).Engine()
		r.Servers = append(r.Servers, NewSystemOn(cfg, eng, core.NewIDSource()))
	}
	return r
}

// ShardOf returns the shard index hosting server i.
func (r *ParallelRack) ShardOf(i int) int { return r.shardOf[i] }

// LinkLatency returns the rack's wire latency (= lookahead window).
func (r *ParallelRack) LinkLatency() Tick { return r.window }

// Connect links servers i and j with the rack's link latency. Same-
// shard pairs get an ordinary local link; cross-shard pairs get a pair
// of mailbox wires. Duplicate links are rejected.
func (r *ParallelRack) Connect(i, j int) error { return r.ConnectLatency(i, j, r.window) }

// ConnectLatency is Connect with an explicit latency, which must be at
// least the lookahead window — a shorter wire would let a frame arrive
// inside the window the destination shard is already executing.
func (r *ParallelRack) ConnectLatency(i, j int, latency Tick) error {
	if i < 0 || i >= len(r.Servers) || j < 0 || j >= len(r.Servers) || i == j {
		return fmt.Errorf("pard: bad rack link %d-%d", i, j)
	}
	if latency < r.window {
		return fmt.Errorf("pard: link %d-%d latency %v is below the PDES lookahead window: links need latency >= %v here, or a smaller LinkLatency when building the rack (Connect's zero-latency default only exists on the sequential Rack)",
			i, j, latency, r.window)
	}
	k := linkKey{i, j}.normalize()
	if r.links[k] {
		return fmt.Errorf("pard: servers %d and %d are already linked", k.a, k.b)
	}
	si, sj := r.shardOf[i], r.shardOf[j]
	if si == sj {
		if err := r.Servers[i].NIC.ConnectPeerLatency(r.Servers[j].NIC, latency); err != nil {
			return err
		}
	} else {
		r.Servers[i].NIC.ConnectWire(&crossWire{
			src: r.Group.Shard(si), dst: sj, peer: r.Servers[j].NIC,
		}, latency)
		r.Servers[j].NIC.ConnectWire(&crossWire{
			src: r.Group.Shard(sj), dst: si, peer: r.Servers[i].NIC,
		}, latency)
		// Register the channel's lookahead so the adaptive policy can
		// hold this pair's horizon at the real wire latency instead of
		// the global minimum window.
		r.Group.SetLookahead(si, sj, latency)
		r.Group.SetLookahead(sj, si, latency)
	}
	r.links[k] = true
	return nil
}

// ConnectRing links server i to (i+1) mod n; ConnectFullMesh links
// every pair. Both use the rack's link latency.
func (r *ParallelRack) ConnectRing() error {
	return cluster.ConnectRing(len(r.Servers), r.Connect)
}

// ConnectFullMesh links every server pair at the rack's link latency.
func (r *ParallelRack) ConnectFullMesh() error {
	return cluster.ConnectFullMesh(len(r.Servers), r.Connect)
}

// Run advances the whole rack by d through barrier windows.
func (r *ParallelRack) Run(d Tick) { r.Group.Run(d) }

// crossWire is the cross-shard NIC link: Deliver runs on the sending
// shard's engine (single-producer) and books the frame into the shard
// runtime's mailbox toward the destination shard, where it is injected
// at the next barrier and executes ReceiveFlow on the peer's engine.
type crossWire struct {
	src  *sim.Shard
	dst  int
	peer *iodev.NIC
}

func (w *crossWire) Deliver(delay sim.Tick, flowID, dstMAC uint64, bytes uint32) {
	peer := w.peer
	w.src.Send(w.dst, delay, func() { peer.ReceiveFlow(flowID, dstMAC, bytes) })
}
