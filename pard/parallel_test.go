package pard

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// The equivalence workload: every server runs STREAM on core 0 and
// pumps flow-tagged frames to its ring successor, whose SDN rule steers
// them into the destination LDom. Pump phases and periods differ per
// server so cross-server deliveries never tie with each other at one
// receiver — the residual same-tick tie rule is documented in
// DESIGN.md §11, and the suite's job is to prove the common case is
// byte-identical, not to construct adversarial ties.
const (
	equivRun    = Millisecond
	equivFrames = 20
)

func equivConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.TraceSample = 8 // flight recorder on: trace equivalence is part of the digest
	return cfg
}

// provisionEquivWorkload installs LDoms, flow rules and pumps on an
// already-linked set of rack servers.
func provisionEquivWorkload(t *testing.T, servers []*System) {
	t.Helper()
	if err := ProvisionScalingWorkload(servers, equivFrames); err != nil {
		t.Fatal(err)
	}
}

func sequentialRackDigest(t *testing.T, n int) string {
	t.Helper()
	rack := NewRack(equivConfig(), n)
	if err := rack.ConnectRing(DefaultLinkLatency); err != nil {
		t.Fatal(err)
	}
	provisionEquivWorkload(t, rack.Servers)
	rack.Run(equivRun)
	return StateDigest(rack.Servers)
}

func parallelRackDigest(t *testing.T, n, shards, workers int) (string, *ParallelRack) {
	t.Helper()
	pr := NewParallelRack(equivConfig(), ParallelRackConfig{
		Servers: n, Shards: shards, Workers: workers,
	})
	if err := pr.ConnectRing(); err != nil {
		t.Fatal(err)
	}
	provisionEquivWorkload(t, pr.Servers)
	pr.Run(equivRun)
	return StateDigest(pr.Servers), pr
}

// firstDiff locates the first differing line of two digests, for
// readable failures.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + " != " + bl[i]
		}
	}
	return "length mismatch"
}

// TestParallelRackEquivalence is the tentpole's gate: for rack sizes
// 2/4/8 and shard counts 1/2/4, the sharded run's full state digest —
// control-plane stats trees, PRM counters, trace spans — must be
// byte-identical to the sequential single-engine rack's.
func TestParallelRackEquivalence(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		want := sequentialRackDigest(t, n)
		if !strings.Contains(want, "rx_pkts") {
			t.Fatalf("n=%d: workload produced no NIC traffic", n)
		}
		for _, shards := range []int{1, 2, 4} {
			if shards > n {
				continue
			}
			got, pr := parallelRackDigest(t, n, shards, shards)
			if got != want {
				t.Errorf("n=%d shards=%d digest differs from sequential rack: %s",
					n, shards, firstDiff(want, got))
			}
			if shards > 1 && pr.Group.CrossSends == 0 {
				t.Errorf("n=%d shards=%d: no frames crossed shards", n, shards)
			}
		}
	}
}

// TestParallelRackWorkerInvariance re-runs one sharded configuration
// with different worker-pool sizes (run under -race by `make race`):
// the pool size must never reach simulation state.
func TestParallelRackWorkerInvariance(t *testing.T) {
	ref, _ := parallelRackDigest(t, 4, 4, 1)
	for _, workers := range []int{2, 4} {
		got, _ := parallelRackDigest(t, 4, 4, workers)
		if got != ref {
			t.Errorf("workers=%d digest differs from inline run: %s",
				workers, firstDiff(ref, got))
		}
	}
}

// TestParallelRackMergedTraces: per-server recorder rings merge into
// one deterministic timeline regardless of sharding.
func TestParallelRackMergedTraces(t *testing.T) {
	recorders := func(servers []*System) []*trace.Recorder {
		out := make([]*trace.Recorder, len(servers))
		for i, s := range servers {
			out[i] = s.Recorder
		}
		return out
	}
	seq := NewRack(equivConfig(), 4)
	if err := seq.ConnectRing(DefaultLinkLatency); err != nil {
		t.Fatal(err)
	}
	provisionEquivWorkload(t, seq.Servers)
	seq.Run(equivRun)
	want := trace.MergeTraces(recorders(seq.Servers)...)

	_, pr := parallelRackDigest(t, 4, 2, 2)
	got := trace.MergeTraces(recorders(pr.Servers)...)
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("merged %d traces, want %d (nonzero)", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("merged trace %d differs: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestParallelRackValidation(t *testing.T) {
	pr := NewParallelRack(equivConfig(), ParallelRackConfig{Servers: 4, Shards: 2})
	if pr.ShardOf(0) != 0 || pr.ShardOf(1) != 1 || pr.ShardOf(2) != 0 {
		t.Fatal("round-robin shard placement broken")
	}
	if err := pr.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := pr.Connect(1, 0); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := pr.ConnectLatency(2, 3, pr.LinkLatency()-1); err == nil {
		t.Error("link latency below lookahead window accepted")
	}
	for _, pair := range [][2]int{{0, 0}, {-1, 1}, {0, 9}} {
		if err := pr.Connect(pair[0], pair[1]); err == nil {
			t.Errorf("link %v accepted", pair)
		}
	}
}

// parallelRackDigestCfg is parallelRackDigest with the rack and server
// configs exposed for mutation (window policy, queue kind).
func parallelRackDigestCfg(t *testing.T, n int, pc ParallelRackConfig, mod func(*Config)) string {
	t.Helper()
	cfg := equivConfig()
	if mod != nil {
		mod(&cfg)
	}
	pc.Servers = n
	pr := NewParallelRack(cfg, pc)
	if err := pr.ConnectRing(); err != nil {
		t.Fatal(err)
	}
	provisionEquivWorkload(t, pr.Servers)
	pr.Run(equivRun)
	return StateDigest(pr.Servers)
}

// TestParallelRackWindowPolicyEquivalence: for racks 2/4/8 × shards
// 1/2/4, the adaptive per-shard horizons (the default) must reproduce
// the lockstep digest byte-for-byte — window policy never reaches
// simulation state.
func TestParallelRackWindowPolicyEquivalence(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for _, shards := range []int{1, 2, 4} {
			if shards > n {
				continue
			}
			lock := parallelRackDigestCfg(t, n, ParallelRackConfig{
				Shards: shards, Workers: shards, Window: sim.LockstepWindows,
			}, nil)
			adpt := parallelRackDigestCfg(t, n, ParallelRackConfig{
				Shards: shards, Workers: shards, Window: sim.AdaptiveWindows,
			}, nil)
			if adpt != lock {
				t.Errorf("n=%d shards=%d: adaptive digest differs from lockstep: %s",
					n, shards, firstDiff(lock, adpt))
			}
		}
	}
}

// TestParallelRackCalendarQueue: shard engines on the calendar queue
// must reproduce the sequential heap rack's digest byte-for-byte, and
// the sequential rack itself must be queue-invariant.
func TestParallelRackCalendarQueue(t *testing.T) {
	want := sequentialRackDigest(t, 4)

	calCfg := equivConfig()
	calCfg.Queue = sim.Calendar
	rack := NewRack(calCfg, 4)
	if err := rack.ConnectRing(DefaultLinkLatency); err != nil {
		t.Fatal(err)
	}
	provisionEquivWorkload(t, rack.Servers)
	rack.Run(equivRun)
	if got := StateDigest(rack.Servers); got != want {
		t.Errorf("sequential calendar-queue digest differs from heap: %s", firstDiff(want, got))
	}

	got := parallelRackDigestCfg(t, 4, ParallelRackConfig{Shards: 2, Workers: 2},
		func(c *Config) { c.Queue = sim.Calendar })
	if got != want {
		t.Errorf("parallel calendar-queue digest differs from sequential heap: %s", firstDiff(want, got))
	}
}
