// Package pard is the public API of the PARD reproduction: it assembles
// the full programmable-architecture server of the paper — tagged cores,
// private L1s, a shared LLC with its control plane, a DDR3 memory
// controller with its control plane, the I/O bridge, IDE, NIC and APIC,
// and the platform resource manager running the device-file-tree
// firmware — and exposes LDom lifecycle, the operator shell and the
// measured statistics.
//
// Quickstart:
//
//	sys := pard.NewSystem(pard.DefaultConfig())
//	ld, _ := sys.CreateLDom(pard.LDomConfig{Name: "svc", Cores: []int{0}, MemBase: 0})
//	sys.RunWorkload(0, pard.NewSTREAM(0))
//	sys.Run(10 * pard.Millisecond)
//	fmt.Println(sys.Firmware.MustSh("cat /sys/cpa/cpa0/ldoms/ldom0/statistics/miss_rate"))
//	_ = ld
package pard

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/iodev"
	"repro/internal/osched"
	"repro/internal/policy"
	"repro/internal/prm"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xbar"
)

// Re-exported fundamental types, so programs against this package rarely
// need the internal packages.
type (
	// DSID tags every intra-computer-network packet with its LDom.
	DSID = core.DSID
	// Tick is simulation time: 1 tick = 1 ps.
	Tick = sim.Tick
	// Workload is a core's operation-stream generator.
	Workload = workload.Generator
	// Memcached is the latency-critical service model.
	Memcached = workload.Memcached
	// MemcachedConfig parameterizes the memcached model.
	MemcachedConfig = workload.MemcachedConfig
	// Stream is the STREAM-triad generator.
	Stream = workload.Stream
	// CacheFlush is the LLC-thrashing microbenchmark.
	CacheFlush = workload.CacheFlush
	// DiskCopy is the dd-style disk workload.
	DiskCopy = workload.DiskCopy
	// LDom is a created logical domain.
	LDom = prm.LDom
	// Process is one schedulable entity of the guest-OS scheduler
	// (process-level DiffServ).
	Process = osched.Process
	// Scheduler multiplexes tagged processes on one core.
	Scheduler = osched.Scheduler
)

// Duration constants re-exported for callers.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Workload constructors re-exported from internal/workload, plus the
// guest-OS scheduler for process-level DiffServ.
var (
	NewMemcached = workload.NewMemcached
	NewSTREAM    = workload.NewSTREAM
	NewLBM       = workload.NewLBM
	NewLeslie3d  = workload.NewLeslie3d
	NewScheduler = osched.New
)

// NICWindowBase is where the NIC's PIO window starts in I/O space; the
// IDE window occupies [0, NICWindowBase).
const NICWindowBase = 1 << 40

// System is one assembled PARD server.
type System struct {
	Cfg    Config
	Engine *sim.Engine
	IDs    *core.IDSource

	Cores []*cpu.Core
	L1s   []*cache.Cache
	LLC   *cache.Cache
	Xbar  *xbar.Crossbar // nil unless Config.Crossbar
	Mem   *dram.Controller

	Bridge *iodev.Bridge
	IDE    *iodev.IDE
	NIC    *iodev.NIC
	APIC   *iodev.APIC

	// MemProbe observes all memory-controller traffic when
	// Config.ProbeMemory is set; nil otherwise.
	MemProbe *trace.Probe

	// Recorder is the ICN flight recorder when Config.TraceSample > 0;
	// nil otherwise (every instrumented hop's recorder call is nil-safe,
	// so the disabled system pays a nil check per hook).
	Recorder *trace.Recorder

	Firmware *prm.Firmware

	// Telemetry is the time-series registry scraping every plane stat
	// and PRM counter; Journal the control-plane audit log. Both are nil
	// when Config.Telemetry.Disable is set (all recording call sites are
	// nil-safe).
	Telemetry *telemetry.Registry
	Journal   *telemetry.Journal

	// ConsoleOrigin labels journal events caused by operator commands
	// dispatched through this System (Sh, policy loads). Defaults to
	// "console"; pardctl overrides it with "pardctl".
	ConsoleOrigin string

	// InterruptsByCore counts APIC deliveries per core.
	InterruptsByCore []uint64
}

// NewSystem builds and wires the server described by cfg and boots the
// PRM firmware with all five control planes mounted
// (cpa0=LLC, cpa1=memory, cpa2=I/O bridge, cpa3=IDE, cpa4=NIC).
func NewSystem(cfg Config) *System {
	ids := &core.IDSource{}
	ids.EnablePool()
	return NewSystemOn(cfg, sim.NewEngine(sim.WithQueue(cfg.Queue)), ids)
}

// NewSystemOn builds a server on a shared engine and packet-id source,
// so several servers can coexist in one simulation (see Rack).
func NewSystemOn(cfg Config, e *sim.Engine, ids *core.IDSource) *System {
	cfg.fillDefaults()
	s := &System{
		Cfg:              cfg,
		Engine:           e,
		IDs:              ids,
		InterruptsByCore: make([]uint64, cfg.Cores),
	}

	s.Mem = dram.New(e, s.IDs, cfg.Mem)
	memPath := core.Target(s.Mem)
	if cfg.ProbeMemory {
		s.MemProbe = trace.NewProbe("mem", e, s.Mem, 64)
		memPath = s.MemProbe
	}
	coreClock := sim.NewClock(e, cfg.CorePeriod)
	s.LLC = cache.New(e, coreClock, s.IDs, cfg.LLC, memPath)

	s.APIC = iodev.NewAPIC(e, func(coreID int, ds core.DSID, vector uint8) {
		if coreID >= 0 && coreID < len(s.InterruptsByCore) {
			s.InterruptsByCore[coreID]++
			s.Cores[coreID].Interrupt(vector)
		}
	})
	s.Bridge = iodev.NewBridge(e, memPath)
	s.IDE = iodev.NewIDE(e, s.IDs, cfg.IDE, s.Bridge.DMATarget(), s.APIC)
	s.NIC = iodev.NewNIC(e, s.IDs, cfg.NIC, s.Bridge.DMATarget(), s.APIC)
	mustAttach(s.Bridge, "ide", 0, NICWindowBase, s.IDE)
	mustAttach(s.Bridge, "nic", NICWindowBase, 1<<40, s.NIC)

	l1Next := core.Target(s.LLC)
	if cfg.Crossbar {
		xcfg := cfg.CrossbarCfg
		if xcfg.Latency == 0 {
			xcfg = xbar.DefaultConfig()
		}
		s.Xbar = xbar.New(e, coreClock, xcfg, s.LLC)
		l1Next = s.Xbar
	}
	for i := 0; i < cfg.Cores; i++ {
		l1cfg := cfg.L1
		l1cfg.Name = l1Name(i)
		l1 := cache.New(e, coreClock, s.IDs, l1cfg, l1Next)
		s.L1s = append(s.L1s, l1)
		c := cpu.New(i, coreClock, s.IDs, l1, s.Bridge)
		c.Window = cfg.CoreWindow
		s.Cores = append(s.Cores, c)
	}

	s.Firmware = prm.NewFirmware(e, cfg.PRM, platform{s})
	s.Firmware.Mount(core.NewCPA(s.LLC.Plane(), 0))
	s.Firmware.Mount(core.NewCPA(s.Mem.Plane(), 1))
	s.Firmware.Mount(core.NewCPA(s.Bridge.Plane(), 2))
	s.Firmware.Mount(core.NewCPA(s.IDE.Plane(), 3))
	s.Firmware.Mount(core.NewCPA(s.NIC.Plane(), 4))
	if s.Xbar != nil {
		s.Firmware.Mount(core.NewCPA(s.Xbar.Plane(), 5))
	}
	s.ConsoleOrigin = "console"
	if !cfg.Telemetry.Disable {
		s.attachTelemetry()
	}
	if cfg.TraceSample > 0 {
		s.attachRecorder(cfg.TraceSample)
	}
	return s
}

// attachRecorder builds the flight recorder, wires it into every hop
// in a fixed order (hop ids are part of the trace's determinism
// contract), and registers the per-LDom latency-percentile statistics
// files for each control plane's resource.
func (s *System) attachRecorder(sampleEvery uint64) {
	rec := trace.NewRecorder(s.Engine, sampleEvery)
	s.Recorder = rec
	memHop := s.Mem.AttachRecorder(rec)
	llcHop := s.LLC.AttachRecorder(rec)
	xbarHop := -1
	if s.Xbar != nil {
		xbarHop = s.Xbar.AttachRecorder(rec)
	}
	for _, l1 := range s.L1s {
		l1.AttachRecorder(rec)
	}
	for _, c := range s.Cores {
		c.AttachRecorder(rec)
	}
	bridgeHop := s.Bridge.AttachRecorder(rec)
	ideHop := s.IDE.AttachRecorder(rec)
	nicHop := s.NIC.AttachRecorder(rec)

	// lat_{p50,p99}_{queue,service} under each CPA's LDom statistics,
	// reading the recorder's per-(hop, DS-id) histograms. Values are in
	// ticks (1 tick = 1 ps).
	hopByCPA := []struct {
		cpa int
		hop int
	}{
		{0, llcHop}, {1, memHop}, {2, bridgeHop}, {3, ideHop}, {4, nicHop},
	}
	if xbarHop >= 0 {
		hopByCPA = append(hopByCPA, struct{ cpa, hop int }{5, xbarHop})
	}
	specs := []struct {
		name    string
		service bool
		q       float64
	}{
		{"lat_p50_queue", false, 0.50},
		{"lat_p99_queue", false, 0.99},
		{"lat_p50_service", true, 0.50},
		{"lat_p99_service", true, 0.99},
	}
	for _, hc := range hopByCPA {
		hop := hc.hop
		for _, sp := range specs {
			sp := sp
			err := s.Firmware.AddLDomStat(hc.cpa, sp.name, func(ds core.DSID) (string, error) {
				return strconv.FormatUint(rec.Percentile(hop, ds, sp.service, sp.q), 10), nil
			})
			if err != nil {
				panic("pard: " + err.Error())
			}
			if s.Telemetry != nil {
				s.Telemetry.AddPlaneGauge("cpa"+strconv.Itoa(hc.cpa), sp.name, func(ds core.DSID) float64 {
					return float64(rec.Percentile(hop, ds, sp.service, sp.q))
				})
			}
		}
	}
}

func mustAttach(b *iodev.Bridge, name string, base, size uint64, dev core.Target) {
	if err := b.Attach(name, base, size, dev); err != nil {
		panic("pard: " + err.Error())
	}
}

func l1Name(i int) string { return "l1." + string(rune('0'+i)) }

// platform adapts System to the firmware's hardware surface.
type platform struct{ s *System }

func (p platform) SetCoreTag(coreID int, ds core.DSID) {
	if coreID >= 0 && coreID < len(p.s.Cores) {
		p.s.Cores[coreID].Tag.Set(ds)
	}
}
func (p platform) RouteInterrupt(ds core.DSID, vector uint8, coreID int) {
	p.s.APIC.SetRoute(ds, vector, coreID)
}
func (p platform) BindVNIC(mac uint64, ds core.DSID, buf uint64) error {
	return p.s.NIC.BindVNIC(mac, ds, buf)
}
func (p platform) UnbindVNIC(mac uint64) { p.s.NIC.UnbindVNIC(mac) }
func (p platform) FlushLDom(ds core.DSID) {
	for _, l1 := range p.s.L1s {
		l1.InvalidateDSID(ds)
	}
	p.s.LLC.InvalidateDSID(ds)
}

// LDomConfig describes a logical domain to create.
type LDomConfig struct {
	Name     string
	Cores    []int
	MemBase  uint64 // DRAM-physical base of the LDom's window
	MemSize  uint64
	Priority uint64 // memory priority (larger = higher)
	RowBuf   uint64 // memory row-buffer id (1 = high-priority buffer)
	MAC      uint64 // nonzero binds a vNIC
	NICBuf   uint64
	// DiskQuota, nonzero, is this LDom's IDE bandwidth percentage.
	DiskQuota uint64
}

// CreateLDom partitions the server: allocates a DS-id, programs every
// control plane, tags the LDom's cores and routes its interrupts —
// fully hardware-supported virtualization, no hypervisor (paper §7.1.1).
func (s *System) CreateLDom(cfg LDomConfig) (*LDom, error) {
	var ld *prm.LDom
	var err error
	s.Firmware.WithOrigin(s.originLabel(), func() {
		ld, err = s.Firmware.CreateLDom(prm.LDomSpec{
			Name: cfg.Name, Cores: cfg.Cores,
			MemBase: cfg.MemBase, MemSize: cfg.MemSize,
			Priority: cfg.Priority, RowBuf: cfg.RowBuf,
			MAC: cfg.MAC, NICBuf: cfg.NICBuf,
		})
		if err == nil && cfg.DiskQuota != 0 {
			s.IDE.Plane().SetParam(ld.DSID, iodev.ParamBandwidth, cfg.DiskQuota)
		}
	})
	if err != nil {
		return nil, err
	}
	return ld, nil
}

// LoadPolicy compiles source against the live control planes and
// installs it as a named policy set (see internal/policy for the
// language). Load fails — with position-accurate errors and nothing
// installed — on unknown names, conflicting rules or exhausted
// trigger slots.
func (s *System) LoadPolicy(name, source string) error {
	var err error
	s.Firmware.WithOrigin(s.originLabel(), func() {
		err = s.Firmware.LoadPolicy(name, source)
	})
	return err
}

// ReloadPolicy atomically replaces a loaded policy set with a new
// source: the replacement is fully validated before the old rules are
// torn down, so a bad reload leaves the running policy untouched.
func (s *System) ReloadPolicy(name, source string) error {
	var err error
	s.Firmware.WithOrigin(s.originLabel(), func() {
		err = s.Firmware.ReloadPolicy(name, source)
	})
	return err
}

// ApplyPolicyFile loads (or hot-reloads) a .pard policy file; the
// policy is named after the file's base name.
func (s *System) ApplyPolicyFile(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return s.ReloadPolicy(policyNameFromPath(path), string(src))
}

// ValidatePolicyFile parses and typechecks a .pard policy file against
// this system's control planes without installing anything. LDom names
// that do not exist yet are allowed (they bind at load time).
func (s *System) ValidatePolicyFile(path string) error {
	_, err := s.LintPolicyFile(path)
	return err
}

// LintPolicyFile validates a .pard policy file and, when it compiles,
// runs pardcheck — the abstract interpreter in internal/policy — over
// the compiled program. The returned issues are advisory (unreachable
// rules, dead triggers, undamped raise/lower pairs); the error is the
// hard parse/typecheck verdict.
func (s *System) LintPolicyFile(path string) ([]policy.Issue, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := s.Firmware.ValidatePolicy(filepath.Base(path), string(src))
	if err != nil {
		return nil, err
	}
	return policy.Lint(prog), nil
}

func policyNameFromPath(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".pard")
}

// RunWorkload starts gen on a core.
func (s *System) RunWorkload(coreID int, gen Workload) {
	s.Cores[coreID].Run(gen)
}

// Run advances the simulation by d.
func (s *System) Run(d Tick) { s.Engine.Run(s.Engine.Now() + d) }

// Sh executes a firmware shell command (cat/echo/ls/tree/pardtrigger).
// Parameter writes it causes are journaled under ConsoleOrigin.
func (s *System) Sh(cmd string) (string, error) {
	var out string
	var err error
	s.Firmware.WithOrigin(s.originLabel(), func() {
		out, err = s.Firmware.Sh(cmd)
	})
	return out, err
}

// originLabel is the journal origin for operator commands entering
// through this System.
func (s *System) originLabel() string {
	if s.ConsoleOrigin == "" {
		return "console"
	}
	return s.ConsoleOrigin
}

// CPUUtilization returns the mean busy fraction across all cores.
func (s *System) CPUUtilization() float64 {
	if len(s.Cores) == 0 {
		return 0
	}
	var sum float64
	for _, c := range s.Cores {
		sum += c.Utilization()
	}
	return sum / float64(len(s.Cores))
}

// LLCOccupancyBytes returns an LDom's LLC footprint (Figure 7's y-axis).
func (s *System) LLCOccupancyBytes(ds DSID) uint64 { return s.LLC.OccupancyBytes(ds) }

// MemBandwidthMBs returns an LDom's last-window DRAM bandwidth.
func (s *System) MemBandwidthMBs(ds DSID) uint64 { return s.Mem.BandwidthMBs(ds) }
