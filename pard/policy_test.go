package pard

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/workload"
)

// llcGuardScenario runs the end-to-end repartitioning scenario of
// TestEndToEndTriggerAdjustsPartition with a caller-chosen way of
// installing the QoS rule, and returns a trajectory: per-sample LLC
// and memory statistics for both LDoms plus the final parameter state.
// Two installs are equivalent only if their trajectories are
// byte-identical.
func llcGuardScenario(t *testing.T, install func(*System)) string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.LLC.SizeBytes = 256 * 1024
	cfg.SampleInterval = 50 * Microsecond
	sys := NewSystem(cfg)
	if _, err := sys.CreateLDom(LDomConfig{Name: "memcached", Cores: []int{0}, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateLDom(LDomConfig{Name: "bg", Cores: []int{1}}); err != nil {
		t.Fatal(err)
	}
	install(sys)

	sys.RunWorkload(0, &workload.Stream{Base: 0, Footprint: 100 << 10, Compute: 4})
	sys.RunWorkload(1, &workload.CacheFlush{Base: 1 << 30, Footprint: 4 << 20, Seed: 1})

	var b strings.Builder
	var sample func()
	sample = func() {
		fmt.Fprintf(&b, "t=%d", sys.Engine.Now())
		for ldom := 0; ldom < 2; ldom++ {
			for _, stat := range []string{"hit_cnt", "miss_cnt"} {
				v := sys.Firmware.MustSh(fmt.Sprintf("cat /sys/cpa/cpa0/ldoms/ldom%d/statistics/%s", ldom, stat))
				fmt.Fprintf(&b, " %d.%s=%s", ldom, stat, v)
			}
			way := sys.Firmware.MustSh(fmt.Sprintf("cat /sys/cpa/cpa0/ldoms/ldom%d/parameters/waymask", ldom))
			serv := sys.Firmware.MustSh(fmt.Sprintf("cat /sys/cpa/cpa1/ldoms/ldom%d/statistics/serv_cnt", ldom))
			fmt.Fprintf(&b, " %d.waymask=%s %d.serv_cnt=%s", ldom, way, ldom, serv)
		}
		fmt.Fprintln(&b)
		if sys.Engine.Now() < 5*Millisecond {
			sys.Engine.Schedule(100*Microsecond, sample)
		}
	}
	sys.Engine.Schedule(100*Microsecond, sample)
	sys.Run(5 * Millisecond)

	fmt.Fprintf(&b, "handled=%d occ0=%d occ1=%d\n",
		sys.Firmware.TriggersHandled, sys.LLCOccupancyBytes(0), sys.LLCOccupancyBytes(1))
	return b.String()
}

// TestPolicyFileMatchesHandCodedLLCAction is the satellite-1
// acceptance check: the shipped llc_guard.pard policy and the built-in
// llc_grow_to_half action drive the simulation through tick-for-tick
// identical trajectories.
func TestPolicyFileMatchesHandCodedLLCAction(t *testing.T) {
	src, err := os.ReadFile("../examples/policies/llc_guard.pard")
	if err != nil {
		t.Fatal(err)
	}

	closure := llcGuardScenario(t, func(sys *System) {
		sys.Firmware.MustSh("pardtrigger cpa0 -ldom=0 -stats=miss_rate -cond=gt,300 -action=llc_grow_to_half")
	})
	viaPolicy := llcGuardScenario(t, func(sys *System) {
		if err := sys.LoadPolicy("llc_guard", string(src)); err != nil {
			t.Fatal(err)
		}
	})

	if !strings.Contains(closure, "0.waymask=0xff00") {
		t.Fatalf("hand-coded action never repartitioned:\n%s", closure)
	}
	if closure != viaPolicy {
		t.Fatalf("trajectories diverge.\n--- closure ---\n%s\n--- policy ---\n%s", closure, viaPolicy)
	}
}

// TestPolicyFileMatchesHandCodedMemAction does the same for the
// memory-priority bump: mem_priority.pard vs mem_raise_priority.
func TestPolicyFileMatchesHandCodedMemAction(t *testing.T) {
	src, err := os.ReadFile("../examples/policies/mem_priority.pard")
	if err != nil {
		t.Fatal(err)
	}

	scenario := func(install func(*System)) (string, *System) {
		cfg := DefaultConfig()
		cfg.SampleInterval = 50 * Microsecond
		sys := NewSystem(cfg)
		if _, err := sys.CreateLDom(LDomConfig{Name: "memcached", Cores: []int{0}}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.CreateLDom(LDomConfig{Name: "bg", Cores: []int{1}, MemBase: 2 << 30}); err != nil {
			t.Fatal(err)
		}
		install(sys)
		// Both LDoms hammer memory so the queues back up.
		sys.RunWorkload(0, &workload.CacheFlush{Base: 0, Footprint: 16 << 20, Seed: 3})
		sys.RunWorkload(1, &workload.CacheFlush{Base: 2 << 30, Footprint: 16 << 20, Seed: 4})

		var b strings.Builder
		var sample func()
		sample = func() {
			fmt.Fprintf(&b, "t=%d prio=%s qlat=%s serv0=%s serv1=%s\n",
				sys.Engine.Now(),
				sys.Firmware.MustSh("cat /sys/cpa/cpa1/ldoms/ldom0/parameters/priority"),
				sys.Firmware.MustSh("cat /sys/cpa/cpa1/ldoms/ldom0/statistics/avg_qlat"),
				sys.Firmware.MustSh("cat /sys/cpa/cpa1/ldoms/ldom0/statistics/serv_cnt"),
				sys.Firmware.MustSh("cat /sys/cpa/cpa1/ldoms/ldom1/statistics/serv_cnt"))
			if sys.Engine.Now() < 3*Millisecond {
				sys.Engine.Schedule(100*Microsecond, sample)
			}
		}
		sys.Engine.Schedule(100*Microsecond, sample)
		sys.Run(3 * Millisecond)
		return b.String(), sys
	}

	closure, csys := scenario(func(sys *System) {
		sys.Firmware.MustSh("pardtrigger cpa1 -ldom=0 -stats=avg_qlat -cond=gt,10 -action=mem_raise_priority")
	})
	viaPolicy, _ := scenario(func(sys *System) {
		if err := sys.LoadPolicy("mem_priority", string(src)); err != nil {
			t.Fatal(err)
		}
	})

	if csys.Firmware.TriggersHandled == 0 {
		t.Fatalf("avg_qlat trigger never fired; scenario is vacuous:\n%s", closure)
	}
	if !strings.Contains(closure, "prio=1") {
		t.Fatalf("hand-coded action never raised priority:\n%s", closure)
	}
	if closure != viaPolicy {
		t.Fatalf("trajectories diverge.\n--- closure ---\n%s\n--- policy ---\n%s", closure, viaPolicy)
	}
}

// TestConsolePolicyCommands exercises the operator-console policy
// surface over the example files.
func TestConsolePolicyCommands(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	out, err := Dispatch(sys, "policy validate ../examples/policies/latency_guard.pard")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(out, ": ok") {
		t.Fatalf("validate output = %q", out)
	}
	if _, err := sys.CreateLDom(LDomConfig{Name: "memcached", Cores: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Dispatch(sys, "policy apply ../examples/policies/latency_guard.pard"); err != nil {
		t.Fatal(err)
	}
	out, err = Dispatch(sys, "policy")
	if err != nil || !strings.Contains(out, "latency_guard: 1 rules") {
		t.Fatalf("policy list = %q, %v", out, err)
	}
	out, err = Dispatch(sys, "policy show latency_guard")
	if err != nil || !strings.Contains(out, "for 3 samples") {
		t.Fatalf("policy show = %q, %v", out, err)
	}
	// Apply again: a hot reload, not a duplicate-name error.
	if _, err := Dispatch(sys, "policy apply ../examples/policies/latency_guard.pard"); err != nil {
		t.Fatalf("re-apply (hot reload) failed: %v", err)
	}
	if _, err := Dispatch(sys, "policy validate ../examples/policies/nope.pard"); err == nil {
		t.Fatal("validating a missing file succeeded")
	}
}
