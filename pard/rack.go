package pard

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// Rack is a set of PARD servers sharing one simulation, with
// point-to-point NIC links between them — the smallest model of the
// paper's data-center setting, where an SDN correlates network flow ids
// with DS-ids so differentiated service follows a request across
// machines (paper §4.1 / §8). For multi-core hosts, ParallelRack runs
// the same topology sharded across engines; the two are equivalent by
// construction and by test (see parallel_test.go).
type Rack struct {
	Engine  *sim.Engine
	Servers []*System

	links map[linkKey]bool
}

// linkKey identifies an undirected server pair; normalize orders it.
type linkKey struct{ a, b int }

func (k linkKey) normalize() linkKey {
	if k.a > k.b {
		k.a, k.b = k.b, k.a
	}
	return k
}

// NewRack builds n identical servers on one engine. Each server gets
// its own pooled packet-id source, so ids — and trace sampling, which
// masks them — do not depend on rack size or on how servers are later
// sharded.
func NewRack(cfg Config, n int) *Rack {
	if n <= 0 {
		panic("pard: rack needs at least one server")
	}
	r := &Rack{Engine: sim.NewEngine(sim.WithQueue(cfg.Queue)), links: make(map[linkKey]bool)}
	for i := 0; i < n; i++ {
		r.Servers = append(r.Servers, NewSystemOn(cfg, r.Engine, core.NewIDSource()))
	}
	return r
}

// Connect links two servers' NICs point to point with zero wire
// latency. Linking a pair twice is an error (it would duplicate every
// frame on the wire; it used to silently re-link instead).
func (r *Rack) Connect(i, j int) error { return r.ConnectLatency(i, j, 0) }

// ConnectLatency is Connect with an explicit wire latency added to
// every frame in both directions.
func (r *Rack) ConnectLatency(i, j int, latency Tick) error {
	if err := r.addLink(i, j); err != nil {
		return err
	}
	return r.Servers[i].NIC.ConnectPeerLatency(r.Servers[j].NIC, latency)
}

// addLink validates the pair and claims it in the rack's link set.
func (r *Rack) addLink(i, j int) error {
	if i < 0 || i >= len(r.Servers) || j < 0 || j >= len(r.Servers) || i == j {
		return fmt.Errorf("pard: bad rack link %d-%d", i, j)
	}
	k := linkKey{i, j}.normalize()
	if r.links[k] {
		return fmt.Errorf("pard: servers %d and %d are already linked", k.a, k.b)
	}
	r.links[k] = true
	return nil
}

// ConnectRing links server i to server (i+1) mod n with the given
// latency — the standard multi-server bench topology. A two-server
// "ring" is the single link. The topology walk lives in
// internal/cluster so Rack, ParallelRack and Cluster share it.
func (r *Rack) ConnectRing(latency Tick) error {
	return cluster.ConnectRing(len(r.Servers), func(i, j int) error {
		return r.ConnectLatency(i, j, latency)
	})
}

// ConnectFullMesh links every server pair with the given latency.
func (r *Rack) ConnectFullMesh(latency Tick) error {
	return cluster.ConnectFullMesh(len(r.Servers), func(i, j int) error {
		return r.ConnectLatency(i, j, latency)
	})
}

// Run advances the whole rack by d.
func (r *Rack) Run(d Tick) { r.Engine.Run(r.Engine.Now() + d) }
