package pard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Rack is a set of PARD servers sharing one simulation, with
// point-to-point NIC links between them — the smallest model of the
// paper's data-center setting, where an SDN correlates network flow ids
// with DS-ids so differentiated service follows a request across
// machines (paper §4.1 / §8).
type Rack struct {
	Engine  *sim.Engine
	IDs     *core.IDSource
	Servers []*System
}

// NewRack builds n identical servers on one engine.
func NewRack(cfg Config, n int) *Rack {
	if n <= 0 {
		panic("pard: rack needs at least one server")
	}
	r := &Rack{Engine: sim.NewEngine(), IDs: &core.IDSource{}}
	r.IDs.EnablePool()
	for i := 0; i < n; i++ {
		r.Servers = append(r.Servers, NewSystemOn(cfg, r.Engine, r.IDs))
	}
	return r
}

// Connect links two servers' NICs point to point.
func (r *Rack) Connect(i, j int) error {
	if i < 0 || i >= len(r.Servers) || j < 0 || j >= len(r.Servers) || i == j {
		return fmt.Errorf("pard: bad rack link %d-%d", i, j)
	}
	r.Servers[i].NIC.ConnectPeer(r.Servers[j].NIC)
	return nil
}

// Run advances the whole rack by d.
func (r *Rack) Run(d Tick) { r.Engine.Run(r.Engine.Now() + d) }
