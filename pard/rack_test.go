package pard

import (
	"testing"
)

func TestRackDSIDPropagation(t *testing.T) {
	// Two servers; a flow's DS-id follows it across the wire: server0's
	// "front" LDom sends flow 7 to server1, whose SDN rule maps flow 7
	// to its "back" LDom regardless of MAC.
	rack := NewRack(DefaultConfig(), 2)
	if err := rack.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	s0, s1 := rack.Servers[0], rack.Servers[1]

	front, err := s0.CreateLDom(LDomConfig{
		Name: "front", Cores: []int{0}, MemBase: 0, MAC: 0xA0, NICBuf: 0x1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.CreateLDom(LDomConfig{Name: "other", Cores: []int{0}, MemBase: 0, MAC: 0xB0, NICBuf: 0x1000})
	back, err := s1.CreateLDom(LDomConfig{
		Name: "back", Cores: []int{1}, MemBase: 2 << 30, MAC: 0xB1, NICBuf: 0x2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// SDN rule on server1: flow 7 belongs to "back".
	if err := s1.NIC.BindFlow(7, back.DSID); err != nil {
		t.Fatal(err)
	}

	// front sends 50 frames of flow 7, addressed to the *other* LDom's
	// MAC; the flow rule must win.
	for i := 0; i < 50; i++ {
		s0.NIC.SendFrame(front.DSID, 0xB0, 7, 0x4000, 1500)
	}
	rack.Run(2 * Millisecond)

	if got := s0.NIC.Plane().Stat(front.DSID, "tx_bytes"); got != 50*1500 {
		t.Fatalf("tx accounting = %d", got)
	}
	if got := s1.NIC.Plane().Stat(back.DSID, "rx_bytes"); got != 50*1500 {
		t.Fatalf("flow-steered rx = %d, want %d", got, 50*1500)
	}
	if got := s1.NIC.Plane().Stat(0, "rx_bytes"); got != 0 {
		t.Fatalf("MAC-addressed LDom (ds0) received %d bytes despite the flow rule", got)
	}
	// RX interrupts landed on the back LDom's core (core 1 of server1).
	if s1.InterruptsByCore[1] == 0 {
		t.Fatal("no RX interrupts delivered to the back LDom's core")
	}
	if s1.InterruptsByCore[0] != 0 {
		t.Fatal("RX interrupts leaked to the wrong core")
	}
}

func TestRackWithoutFlowRuleUsesMAC(t *testing.T) {
	rack := NewRack(DefaultConfig(), 2)
	rack.Connect(0, 1)
	s0, s1 := rack.Servers[0], rack.Servers[1]
	s0.CreateLDom(LDomConfig{Name: "a", Cores: []int{0}, MAC: 0xA0, NICBuf: 0x1000})
	s1.CreateLDom(LDomConfig{Name: "b", Cores: []int{0}, MAC: 0xB0, NICBuf: 0x1000})
	s0.NIC.SendFrame(0, 0xB0, 99, 0, 1500) // unknown flow: MAC classifies
	rack.Run(Millisecond)
	if got := s1.NIC.Plane().Stat(0, "rx_bytes"); got != 1500 {
		t.Fatalf("MAC fallback rx = %d", got)
	}
}

func TestRackSharedEngineDeterminism(t *testing.T) {
	run := func() uint64 {
		rack := NewRack(DefaultConfig(), 2)
		rack.Connect(0, 1)
		for i, s := range rack.Servers {
			s.CreateLDom(LDomConfig{Name: "w", Cores: []int{0}, MAC: uint64(0xA0 + i), NICBuf: 0x1000})
			s.RunWorkload(0, NewSTREAM(0))
		}
		rack.Run(Millisecond)
		return rack.Servers[0].Mem.Served + rack.Servers[1].Mem.Served*1000003
	}
	if run() != run() {
		t.Fatal("rack simulation not deterministic")
	}
}

func TestRackDuplicateLinkRejected(t *testing.T) {
	rack := NewRack(DefaultConfig(), 3)
	if err := rack.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := rack.Connect(0, 1); err == nil {
		t.Error("duplicate link 0-1 accepted")
	}
	if err := rack.Connect(1, 0); err == nil {
		t.Error("reversed duplicate link 1-0 accepted")
	}
	if err := rack.Connect(1, 2); err != nil {
		t.Errorf("distinct link rejected: %v", err)
	}
}

func TestRackTopologyHelpers(t *testing.T) {
	ring := NewRack(DefaultConfig(), 4)
	if err := ring.ConnectRing(0); err != nil {
		t.Fatal(err)
	}
	for i, s := range ring.Servers {
		if got := s.NIC.NumLinks(); got != 2 {
			t.Errorf("ring: server %d has %d links, want 2", i, got)
		}
	}

	pair := NewRack(DefaultConfig(), 2)
	if err := pair.ConnectRing(0); err != nil {
		t.Fatal(err)
	}
	for i, s := range pair.Servers {
		if got := s.NIC.NumLinks(); got != 1 {
			t.Errorf("2-ring: server %d has %d links, want 1", i, got)
		}
	}

	mesh := NewRack(DefaultConfig(), 4)
	if err := mesh.ConnectFullMesh(0); err != nil {
		t.Fatal(err)
	}
	for i, s := range mesh.Servers {
		if got := s.NIC.NumLinks(); got != 3 {
			t.Errorf("mesh: server %d has %d links, want 3", i, got)
		}
	}

	if err := NewRack(DefaultConfig(), 1).ConnectRing(0); err == nil {
		t.Error("1-server ring accepted")
	}
	if err := NewRack(DefaultConfig(), 1).ConnectFullMesh(0); err == nil {
		t.Error("1-server mesh accepted")
	}
}

func TestRackValidation(t *testing.T) {
	rack := NewRack(DefaultConfig(), 2)
	for _, pair := range [][2]int{{0, 0}, {-1, 1}, {0, 5}} {
		if err := rack.Connect(pair[0], pair[1]); err == nil {
			t.Errorf("link %v accepted", pair)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-server rack did not panic")
		}
	}()
	NewRack(DefaultConfig(), 0)
}
