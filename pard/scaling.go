package pard

import "fmt"

// ProvisionScalingWorkload installs the standard rack-scaling workload
// on an already ring-linked set of servers: one LDom per server (MAC
// 0xA0+i) running STREAM on core 0, an SDN flow rule at the ring
// successor, and a pump of `frames` 1500-byte flow-tagged frames toward
// it. Pump phases and periods are de-phased per server so deliveries
// from different servers never tie at one receiver (see DESIGN.md §11
// on the residual same-tick tie rule). The equivalence suite,
// BenchmarkRackParallel* and `pardbench -shards` all drive exactly this
// traffic, so they measure — and cross-check — the same simulation.
func ProvisionScalingWorkload(servers []*System, frames int) error {
	n := len(servers)
	if n < 2 {
		return fmt.Errorf("pard: scaling workload needs at least 2 servers, have %d", n)
	}
	lds := make([]*LDom, n)
	for i, s := range servers {
		ld, err := s.CreateLDom(LDomConfig{
			Name: "svc", Cores: []int{0}, MemBase: 0,
			MAC: uint64(0xA0 + i), NICBuf: 0x1000,
		})
		if err != nil {
			return err
		}
		lds[i] = ld
		s.RunWorkload(0, NewSTREAM(uint64(i)))
	}
	for i, s := range servers {
		dst := (i + 1) % n
		if err := servers[dst].NIC.BindFlow(uint64(100+i), lds[dst].DSID); err != nil {
			return err
		}
		s, ld := s, lds[i]
		flow, mac := uint64(100+i), uint64(0xA0+dst)
		sent := 0
		var pump func()
		pump = func() {
			s.NIC.SendFrame(ld.DSID, mac, flow, 0x4000, 1500)
			if sent++; sent < frames {
				s.Engine.Schedule(29*Microsecond+Tick(i)*1709*Nanosecond, pump)
			}
		}
		s.Engine.At(3*Microsecond+Tick(i)*977*Nanosecond, pump)
	}
	return nil
}
