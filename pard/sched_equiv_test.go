package pard

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// schedEquivAlgos maps the mounted control planes to their PIFO
// re-expressions: the LLC MSHR stall queue (cpa0), the memory
// controller (cpa1) and the IDE disk scheduler (cpa3). Installing them
// through /sys/cpa/cpaN/scheduler is the operator path — the same
// device node a `.pard` schedule declaration writes.
var schedEquivAlgos = map[int]string{
	0: "pifo-fifo",
	1: "pifo-frfcfs",
	3: "pifo-drr",
}

// rackDigestWithSchedulers runs the rack equivalence workload — STREAM
// on every core 0, cross-server flow-tagged frames — plus per-server
// disk bursts from two DS-ids so the IDE DRR ring is on the path, with
// the given scheduler algorithms installed before any traffic flows.
func rackDigestWithSchedulers(t *testing.T, algos map[int]string) string {
	t.Helper()
	rack := NewRack(equivConfig(), 2)
	if err := rack.ConnectRing(DefaultLinkLatency); err != nil {
		t.Fatal(err)
	}
	for _, s := range rack.Servers {
		for cpa, algo := range algos {
			node := fmt.Sprintf("/sys/cpa/cpa%d/scheduler", cpa)
			if err := s.Firmware.FS().WriteFile(node, algo); err != nil {
				t.Fatal(err)
			}
			if got, err := s.Firmware.FS().ReadFile(node); err != nil || got != algo {
				t.Fatalf("scheduler node %s: got %q, %v; want %q", node, got, err, algo)
			}
		}
	}
	provisionEquivWorkload(t, rack.Servers)
	// A second STREAM per server: two concurrent requesters walking
	// different rows build a real memory-controller queue, so scheduler
	// order is observable — without this the digest cannot distinguish
	// algorithms and the equivalence gate is vacuous (a `strict`
	// install must and does change the digest).
	for i, s := range rack.Servers {
		s.RunWorkload(1, NewSTREAM(uint64(100+i)))
	}
	for i, s := range rack.Servers {
		s := s
		for j := 0; j < 8; j++ {
			ds := core.DSID(1 + j%2)
			size := uint32(8<<10) + uint32(j)*4<<10
			s.Engine.At(5*Microsecond+Tick(i)*1031*Nanosecond+Tick(j)*7013*Nanosecond, func() {
				p := core.NewPacket(s.IDs, core.KindPIOWrite, ds, 0, size, s.Engine.Now())
				s.IDE.Request(p)
			})
		}
	}
	rack.Run(equivRun)
	return StateDigest(rack.Servers)
}

// TestPIFOSchedulerStateDigestEquivalence is the system-level gate on
// the rank-function re-expression (DESIGN.md §13): with pifo-fifo,
// pifo-frfcfs and pifo-drr installed on every server, the full
// architectural end-state digest — control-plane tables, device and
// interrupt counters, trace-span hash — must be byte-identical to the
// hard-coded schedulers' run. The per-component trajectory tests pin
// each scheduler's decision sequence; this pins their composition.
func TestPIFOSchedulerStateDigestEquivalence(t *testing.T) {
	want := rackDigestWithSchedulers(t, nil)
	got := rackDigestWithSchedulers(t, schedEquivAlgos)
	if want != got {
		t.Fatalf("PIFO scheduler digest diverged from hard-coded schedulers: %s", firstDiff(want, got))
	}
	if !strings.Contains(want, "mem served=") {
		t.Fatalf("digest missing memory traffic:\n%s", want)
	}
}
