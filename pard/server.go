package pard

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Console serves the operator console over TCP — the PRM's Ethernet
// adaptor (paper §3: the PRM SoC includes "an Ethernet adaptor"; data
// center resource managers submit requests to the firmware remotely).
//
// The simulation is single-threaded; connection goroutines serialize
// every command through a channel into one executor goroutine, so
// concurrent operators observe a consistent machine.
type Console struct {
	sys *System
	ln  net.Listener

	cmds chan consoleCmd
	wg   sync.WaitGroup
	quit chan struct{}
	once sync.Once
}

type consoleCmd struct {
	line  string
	reply chan consoleReply
}

type consoleReply struct {
	out string
	err error
}

// NewConsole starts serving on addr (e.g. "127.0.0.1:0"). The returned
// console owns the listener; Close shuts everything down.
func NewConsole(sys *System, addr string) (*Console, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Console{
		sys:  sys,
		ln:   ln,
		cmds: make(chan consoleCmd),
		quit: make(chan struct{}),
	}
	c.wg.Add(2)
	go c.execLoop()
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address.
func (c *Console) Addr() net.Addr { return c.ln.Addr() }

// Close stops the console and waits for its goroutines.
func (c *Console) Close() error {
	var err error
	c.once.Do(func() {
		close(c.quit)
		err = c.ln.Close()
		c.wg.Wait()
	})
	return err
}

// execLoop is the only goroutine that touches the simulation.
func (c *Console) execLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.quit:
			return
		case cmd := <-c.cmds:
			out, err := Dispatch(c.sys, cmd.line)
			cmd.reply <- consoleReply{out: out, err: err}
		}
	}
}

func (c *Console) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.serve(conn)
	}
}

func (c *Console) serve(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	fmt.Fprintf(conn, "PARD platform resource manager. Type 'help'.\n")
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			fmt.Fprintln(conn, "bye")
			return
		}
		reply := make(chan consoleReply, 1)
		select {
		case <-c.quit:
			return
		case c.cmds <- consoleCmd{line: line, reply: reply}:
		}
		r := <-reply
		switch {
		case r.err != nil:
			fmt.Fprintf(conn, "error: %v\n", r.err)
		case r.out != "":
			fmt.Fprintln(conn, r.out)
		}
		fmt.Fprintln(conn, "ok")
	}
}
