package pard

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Console serves the operator console over TCP — the PRM's Ethernet
// adaptor (paper §3: the PRM SoC includes "an Ethernet adaptor"; data
// center resource managers submit requests to the firmware remotely).
//
// The simulation is single-threaded; connection goroutines serialize
// every command through a channel into one executor goroutine, so
// concurrent operators observe a consistent machine.
//
// Shutdown discipline: the top-level WaitGroup counts only the two
// long-lived loops, so Close's Wait never races an Add. Connection
// goroutines are counted by a second WaitGroup owned by acceptLoop,
// which drains them before it exits — Add and Wait for that group both
// happen on the accept side, never concurrently. Close also tears down
// every live connection, so operators idling in a read cannot wedge
// shutdown.
type Console struct {
	sys *System
	ln  net.Listener

	cmds chan consoleCmd
	wg   sync.WaitGroup // execLoop + acceptLoop only
	quit chan struct{}
	once sync.Once

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

type consoleCmd struct {
	line  string
	fn    func() // non-nil: run fn instead of dispatching line
	reply chan consoleReply
}

type consoleReply struct {
	out string
	err error
}

// NewConsole starts serving on addr (e.g. "127.0.0.1:0"). The returned
// console owns the listener; Close shuts everything down.
func NewConsole(sys *System, addr string) (*Console, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Console{
		sys:   sys,
		ln:    ln,
		cmds:  make(chan consoleCmd),
		quit:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	c.wg.Add(2)
	go c.execLoop()
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address.
func (c *Console) Addr() net.Addr { return c.ln.Addr() }

// Close stops the console: no new connections, live connections torn
// down, and both loops (plus every serve goroutine, transitively via
// acceptLoop) drained before it returns. Safe to call more than once;
// later calls return nil without waiting.
func (c *Console) Close() error {
	var err error
	c.once.Do(func() {
		close(c.quit)
		err = c.ln.Close()
		c.mu.Lock()
		c.closed = true
		for conn := range c.conns {
			conn.Close()
		}
		c.mu.Unlock()
		c.wg.Wait()
	})
	return err
}

// track registers a live connection; it reports false (and closes conn)
// when shutdown already started, so a connection accepted concurrently
// with Close can never linger unsupervised.
func (c *Console) track(conn net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return false
	}
	c.conns[conn] = struct{}{}
	return true
}

func (c *Console) untrack(conn net.Conn) {
	c.mu.Lock()
	delete(c.conns, conn)
	c.mu.Unlock()
	conn.Close()
}

// execLoop is the only goroutine that touches the simulation.
func (c *Console) execLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.quit:
			return
		case cmd := <-c.cmds:
			if cmd.fn != nil {
				cmd.fn()
				cmd.reply <- consoleReply{}
				break
			}
			out, err := Dispatch(c.sys, cmd.line)
			cmd.reply <- consoleReply{out: out, err: err}
		}
	}
}

// Do runs fn on the executor goroutine — the only goroutine allowed to
// touch the simulation — and returns once it completes. HTTP handlers
// (the pardd /metrics and JSON endpoints) use it so concurrent scrapes
// and console commands observe a consistent machine. Returns an error
// without running fn when the console is shutting down.
func (c *Console) Do(fn func()) error {
	reply := make(chan consoleReply, 1)
	select {
	case <-c.quit:
		return fmt.Errorf("console closed")
	case c.cmds <- consoleCmd{fn: fn, reply: reply}:
	}
	<-reply
	return nil
}

func (c *Console) acceptLoop() {
	defer c.wg.Done()
	var connWG sync.WaitGroup
	defer connWG.Wait() // drain serve goroutines before reporting done
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !c.track(conn) {
			return
		}
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			c.serve(conn)
		}()
	}
}

func (c *Console) serve(conn net.Conn) {
	defer c.untrack(conn)
	fmt.Fprintf(conn, "PARD platform resource manager. Type 'help'.\n")
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			fmt.Fprintln(conn, "bye")
			return
		}
		reply := make(chan consoleReply, 1)
		select {
		case <-c.quit:
			return
		case c.cmds <- consoleCmd{line: line, reply: reply}:
		}
		r := <-reply
		switch {
		case r.err != nil:
			fmt.Fprintf(conn, "error: %v\n", r.err)
		case r.out != "":
			fmt.Fprintln(conn, r.out)
		}
		fmt.Fprintln(conn, "ok")
	}
}
