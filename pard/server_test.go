package pard

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// dialConsole connects and returns a send-line/read-until-ok helper.
func dialConsole(t *testing.T, addr net.Addr) (func(string) string, func()) {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	if _, err := r.ReadString('\n'); err != nil { // banner
		t.Fatal(err)
	}
	send := func(line string) string {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		var out []string
		for {
			l, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("read after %q: %v", line, err)
			}
			l = strings.TrimRight(l, "\n")
			if l == "ok" {
				break
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	return send, func() { conn.Close() }
}

func TestConsoleEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeMemory = true
	sys := NewSystem(cfg)
	console, err := NewConsole(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer console.Close()

	send, closeConn := dialConsole(t, console.Addr())
	defer closeConn()

	if out := send("create web 0 1"); !strings.Contains(out, "created ldom0") {
		t.Fatalf("create: %q", out)
	}
	if out := send("workload 0 stream"); !strings.Contains(out, "running stream") {
		t.Fatalf("workload: %q", out)
	}
	if out := send("run 2"); !strings.Contains(out, "advanced 2ms") {
		t.Fatalf("run: %q", out)
	}
	// Firmware shell commands pass straight through.
	if out := send("cat /sys/cpa/cpa0/ident"); out != "CACHE_CP" {
		t.Fatalf("cat: %q", out)
	}
	miss := send("cat /sys/cpa/cpa0/ldoms/ldom0/statistics/miss_cnt")
	if miss == "0" || miss == "" {
		t.Fatalf("no traffic accounted: miss_cnt = %q", miss)
	}
	if out := send("trace"); !strings.Contains(out, "probe mem") {
		t.Fatalf("trace: %q", out)
	}
	if out := send("bogus-command"); !strings.Contains(out, "error") {
		t.Fatalf("error not surfaced: %q", out)
	}
}

func TestConsoleSerializesConcurrentOperators(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	console, err := NewConsole(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer console.Close()

	// Several operators hammer the console at once; the executor
	// serializes them, so every command gets a coherent reply and the
	// race detector stays quiet.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			send, closeConn := dialConsole(t, console.Addr())
			defer closeConn()
			for j := 0; j < 10; j++ {
				out := send("ls /sys/cpa")
				if !strings.Contains(out, "cpa0/") {
					t.Errorf("operator %d: %q", i, out)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestConsoleCloseIdempotent(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	console, err := NewConsole(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := console.Close(); err != nil {
		t.Fatal(err)
	}
	if err := console.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConsoleCloseWithActiveConnections(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	console, err := NewConsole(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Operators connect and then sit idle; Close must disconnect them
	// rather than wait forever on their serve goroutines.
	var conns []net.Conn
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", console.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conns = append(conns, conn)
	}
	done := make(chan error, 1)
	go func() { done <- console.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung waiting on idle connections")
	}
}

func TestConsoleCloseDuringConnectStorm(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	console, err := NewConsole(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := console.Addr().String()

	// A storm of short-lived operators races the shutdown: under the
	// old scheme acceptLoop's wg.Add could run concurrently with
	// Close's wg.Wait, which the race detector (and WaitGroup's own
	// panic) reject.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return // listener closed
				}
				fmt.Fprintln(conn, "help")
				conn.Close()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := console.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(stop)
	wg.Wait()
}

func TestDispatchValidation(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	bad := []string{
		"create onlyname",
		"create x 99",
		"workload 0 nosuch",
		"workload 99 stream",
		"run xyz",
	}
	for _, line := range bad {
		if _, err := Dispatch(sys, line); err == nil {
			t.Errorf("command %q did not error", line)
		}
	}
	if out, err := Dispatch(sys, ""); err != nil || out != "" {
		t.Error("empty line should be a no-op")
	}
	if out, err := Dispatch(sys, "help"); err != nil || !strings.Contains(out, "pardtrigger") {
		t.Errorf("help output: %q, %v", out, err)
	}
}

func TestDispatchWorkloadDoubleStartRejected(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	Dispatch(sys, "create a 0")
	if _, err := Dispatch(sys, "workload 0 stream"); err != nil {
		t.Fatal(err)
	}
	if _, err := Dispatch(sys, "workload 0 flush"); err == nil {
		t.Fatal("double workload start accepted")
	}
}
