package pard

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestSystemBootsWithFiveControlPlanes(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	out, err := sys.Sh("ls /sys/cpa")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cpa0/", "cpa1/", "cpa2/", "cpa3/", "cpa4/"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in %q", want, out)
		}
	}
	idents := map[string]string{
		"cpa0": "CACHE_CP", "cpa1": "MEM_CP", "cpa2": "BRIDGE_CP",
		"cpa3": "IDE_CP", "cpa4": "NIC_CP",
	}
	for cpa, want := range idents {
		got := sys.Firmware.MustSh("cat /sys/cpa/" + cpa + "/ident")
		if got != want {
			t.Fatalf("%s ident = %q, want %q", cpa, got, want)
		}
	}
}

func TestCreateLDomTagsCoresAndMapsMemory(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	ld, err := sys.CreateLDom(LDomConfig{
		Name: "svc", Cores: []int{0, 1}, MemBase: 2 << 30, MemSize: 2 << 30, Priority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cores[0].Tag.Get() != ld.DSID || sys.Cores[1].Tag.Get() != ld.DSID {
		t.Fatal("core tag registers not programmed")
	}
	got := sys.Firmware.MustSh("cat /sys/cpa/cpa1/ldoms/ldom0/parameters/addr_base")
	if got != "2147483648" {
		t.Fatalf("addr_base = %q", got)
	}
}

func TestWorkloadTrafficShowsInControlPlaneStats(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	ld, _ := sys.CreateLDom(LDomConfig{Name: "a", Cores: []int{0}})
	sys.RunWorkload(0, NewSTREAM(0))
	sys.Run(2 * Millisecond)
	if sys.LLCOccupancyBytes(ld.DSID) == 0 {
		t.Fatal("no LLC occupancy after 2ms of STREAM")
	}
	hits := sys.Firmware.MustSh("cat /sys/cpa/cpa0/ldoms/ldom0/statistics/hit_cnt")
	misses := sys.Firmware.MustSh("cat /sys/cpa/cpa0/ldoms/ldom0/statistics/miss_cnt")
	if hits == "0" && misses == "0" {
		t.Fatal("no LLC traffic accounted")
	}
	if sys.MemBandwidthMBs(ld.DSID) == 0 {
		t.Fatal("no memory bandwidth accounted")
	}
}

func TestTwoLDomsOverlappingGuestAddresses(t *testing.T) {
	// Fully hardware-supported virtualization: both LDoms use guest
	// physical addresses starting at 0; tags plus the memory address
	// map keep them apart (paper §4.2 footnote 4).
	sys := NewSystem(DefaultConfig())
	sys.CreateLDom(LDomConfig{Name: "a", Cores: []int{0}, MemBase: 0})
	sys.CreateLDom(LDomConfig{Name: "b", Cores: []int{1}, MemBase: 4 << 30})
	sys.RunWorkload(0, &workload.Stream{Base: 0, Footprint: 1 << 20, Compute: 2})
	sys.RunWorkload(1, &workload.Stream{Base: 0, Footprint: 1 << 20, Compute: 2})
	sys.Run(Millisecond)
	if sys.LLCOccupancyBytes(0) == 0 || sys.LLCOccupancyBytes(1) == 0 {
		t.Fatal("both LDoms should hold LLC blocks")
	}
}

func TestDiskQuotaThroughLDomConfig(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	sys.CreateLDom(LDomConfig{Name: "fast", Cores: []int{0}, DiskQuota: 80})
	got := sys.Firmware.MustSh("cat /sys/cpa/cpa3/ldoms/ldom0/parameters/bandwidth")
	if got != "80" {
		t.Fatalf("disk quota = %q", got)
	}
}

func TestEndToEndTriggerAdjustsPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LLC.SizeBytes = 256 * 1024 // small LLC so thrash shows fast
	cfg.SampleInterval = 50 * Microsecond
	sys := NewSystem(cfg)
	mc, _ := sys.CreateLDom(LDomConfig{Name: "mc", Cores: []int{0}, Priority: 1})
	sys.CreateLDom(LDomConfig{Name: "bg", Cores: []int{1}})

	sys.Firmware.MustSh("pardtrigger cpa0 -ldom=0 -stats=miss_rate -cond=gt,300 -action=llc_grow_to_half")

	// The service misses heavily once the co-runner thrashes the LLC.
	sys.RunWorkload(0, &workload.Stream{Base: 0, Footprint: 100 << 10, Compute: 4})
	sys.RunWorkload(1, &workload.CacheFlush{Base: 1 << 30, Footprint: 4 << 20, Seed: 1})
	sys.Run(5 * Millisecond)

	mask := sys.Firmware.MustSh("cat /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
	if mask != "0xff00" {
		t.Fatalf("trigger did not repartition: ldom0 waymask = %s (triggers fired: %d, handled: %d)",
			mask, sys.LLC.Plane().TriggersFired, sys.Firmware.TriggersHandled)
	}
	if sys.Firmware.TriggersHandled == 0 {
		t.Fatal("firmware never handled the trigger")
	}
	_ = mc
}

func TestDiskWorkloadEndToEnd(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	ld, _ := sys.CreateLDom(LDomConfig{Name: "dd", Cores: []int{0}})
	sys.RunWorkload(0, &workload.DiskCopy{TotalBytes: 4 << 20, ChunkBytes: 256 << 10, Write: true, Compute: 100})
	sys.Run(100 * Millisecond)
	served := sys.Firmware.MustSh("cat /sys/cpa/cpa3/ldoms/ldom0/statistics/serv_bytes")
	if served != "4194304" {
		t.Fatalf("serv_bytes = %q, want full 4 MiB", served)
	}
	// Disk completion interrupts were routed to the LDom's core 0.
	if sys.InterruptsByCore[0] == 0 {
		t.Fatal("no disk interrupts delivered to core 0")
	}
	// DMA traffic was accounted at the bridge for this LDom.
	dma := sys.Firmware.MustSh("cat /sys/cpa/cpa2/ldoms/ldom0/statistics/dma_bytes")
	if dma == "0" {
		t.Fatal("bridge saw no DMA bytes")
	}
	_ = ld
}

func TestUtilizationAccounting(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	sys.CreateLDom(LDomConfig{Name: "a", Cores: []int{0}})
	sys.RunWorkload(0, &workload.Spin{Quantum: 100})
	sys.Run(Millisecond)
	// 1 of 4 cores busy: 25% total utilization, the paper's solo-mode
	// number.
	u := sys.CPUUtilization()
	if u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %.3f, want ~0.25", u)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	sys := NewSystem(Config{})
	if len(sys.Cores) != 4 {
		t.Fatalf("default cores = %d", len(sys.Cores))
	}
	if sys.LLC.Config().SizeBytes != 4<<20 {
		t.Fatalf("default LLC = %d bytes", sys.LLC.Config().SizeBytes)
	}
}

func TestProcessLevelDiffServOnSystem(t *testing.T) {
	// Public-API path for the osched extension: two tagged processes
	// share core 0; both show up independently in the LLC control
	// plane's statistics.
	sys := NewSystem(DefaultConfig())
	sys.CreateLDom(LDomConfig{Name: "host", Cores: []int{0}})
	procs := []*Process{
		{Name: "p30", DSID: 30, Gen: &workload.Stream{Base: 0, Footprint: 256 << 10, Compute: 3}},
		{Name: "p31", DSID: 31, Gen: &workload.Stream{Base: 1 << 30, Footprint: 256 << 10, Compute: 3}},
	}
	sched := NewScheduler(&sys.Cores[0].Tag, 200*Microsecond, 500, procs...)
	sys.RunWorkload(0, sched)
	sys.Run(3 * Millisecond)
	for _, ds := range []DSID{30, 31} {
		total := sys.LLC.Plane().Stat(ds, "hit_cnt") + sys.LLC.Plane().Stat(ds, "miss_cnt")
		if total == 0 {
			t.Fatalf("process ds%d invisible to the LLC control plane", ds)
		}
	}
	if sched.ContextSwitches < 5 {
		t.Fatalf("context switches = %d", sched.ContextSwitches)
	}
}

func TestSecurityPolicyEndToEnd(t *testing.T) {
	// Open problem "how to design and deploy security policy on PARD
	// servers": a bounded LDom that strays outside its memory window
	// trips a violations trigger, and the quarantine action demotes it.
	sys := NewSystem(DefaultConfig())
	sys.CreateLDom(LDomConfig{Name: "rogue", Cores: []int{0}, MemBase: 0, MemSize: 1 << 20, Priority: 1})
	sys.Firmware.MustSh("pardtrigger cpa1 -ldom=0 -stats=violations -cond=gt,0 -action=quarantine")

	// The workload walks far beyond its 1 MiB window.
	sys.RunWorkload(0, &workload.CacheFlush{Base: 0, Footprint: 64 << 20, Seed: 9})
	sys.Run(Millisecond)

	if v := sys.Mem.Violations; v == 0 {
		t.Fatal("no violations recorded")
	}
	if sys.Firmware.TriggersHandled == 0 {
		t.Fatal("violation trigger never handled")
	}
	if got := sys.Firmware.MustSh("cat /sys/cpa/cpa1/ldoms/ldom0/parameters/priority"); got != "0" {
		t.Fatalf("rogue LDom priority = %s after quarantine", got)
	}
	if got := sys.Firmware.MustSh("cat /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask"); got != "0x1" {
		t.Fatalf("rogue LDom waymask = %s after quarantine", got)
	}
}

func TestCrossResourceTriggerAction(t *testing.T) {
	// Paper §3: "thanks to the centralized PRM, trigger and action can
	// be designated to different resources. For instance, if a trigger
	// is created to monitor memory bandwidth, its action can be defined
	// to adjust LLC capacity."
	cfg := DefaultConfig()
	cfg.SampleInterval = 50 * Microsecond
	sys := NewSystem(cfg)
	sys.CreateLDom(LDomConfig{Name: "svc", Cores: []int{0}})
	sys.CreateLDom(LDomConfig{Name: "bg", Cores: []int{1}})

	// Trigger on the MEMORY plane (cpa1), action on the LLC.
	sys.Firmware.MustSh(
		"pardtrigger cpa1 -ldom=0 -stats=bandwidth -cond=gt,100 -action=llc_grow_to_half")

	// Heavy traffic pushes ldom0's memory bandwidth over 100 MB/s.
	sys.RunWorkload(0, &workload.CacheFlush{Base: 0, Footprint: 16 << 20, Seed: 1})
	sys.Run(3 * Millisecond)

	if sys.Firmware.TriggersHandled == 0 {
		t.Fatal("memory-plane trigger never fired")
	}
	mask := sys.Firmware.MustSh("cat /sys/cpa/cpa0/ldoms/ldom0/parameters/waymask")
	if mask != "0xff00" {
		t.Fatalf("LLC action did not run from memory trigger: waymask = %s", mask)
	}
	other := sys.Firmware.MustSh("cat /sys/cpa/cpa0/ldoms/ldom1/parameters/waymask")
	if other != "0xff" {
		t.Fatalf("other LDom not repartitioned: %s", other)
	}
}

func TestMemProbeObservesTaggedTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbeMemory = true
	sys := NewSystem(cfg)
	ld, _ := sys.CreateLDom(LDomConfig{Name: "a", Cores: []int{0}})
	sys.RunWorkload(0, NewSTREAM(0))
	sys.Run(Millisecond)
	if sys.MemProbe == nil || sys.MemProbe.Total() == 0 {
		t.Fatal("memory probe saw nothing")
	}
	if sys.MemProbe.CountByDSID(ld.DSID) == 0 {
		t.Fatal("probe did not attribute traffic to the LDom's DS-id")
	}
	// Default systems carry no probe.
	plain := NewSystem(DefaultConfig())
	if plain.MemProbe != nil {
		t.Fatal("probe present without opt-in")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() string {
		sys := NewSystem(DefaultConfig())
		sys.CreateLDom(LDomConfig{Name: "a", Cores: []int{0}})
		sys.CreateLDom(LDomConfig{Name: "b", Cores: []int{1}})
		sys.RunWorkload(0, NewSTREAM(0))
		sys.RunWorkload(1, &workload.CacheFlush{Base: 1 << 30, Footprint: 8 << 20, Seed: 7})
		sys.Run(Millisecond)
		return sys.Firmware.MustSh("cat /sys/cpa/cpa0/ldoms/ldom0/statistics/miss_cnt") + "/" +
			sys.Firmware.MustSh("cat /sys/cpa/cpa1/ldoms/ldom1/statistics/serv_cnt")
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %q vs %q", a, b)
	}
}
