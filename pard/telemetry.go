package pard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// attachTelemetry boots the telemetry plane: the audit journal, the
// time-series registry scraping every mounted control plane's
// statistics table, parameter-write observers on every plane, and the
// firmware counter gauges. Called after the control planes are mounted
// and before the flight recorder attaches (the recorder adds its
// latency-percentile gauges onto the plane sources created here).
//
// Everything registered here only ever reads simulation state;
// StateDigest is byte-identical with telemetry enabled or disabled.
func (s *System) attachTelemetry() {
	tcfg := s.Cfg.Telemetry
	s.Journal = telemetry.NewJournal(s.Engine, tcfg.JournalCapacity)
	s.Telemetry = telemetry.NewRegistry(s.Engine, tcfg.Interval, tcfg.SeriesCapacity)
	s.Firmware.SetJournal(s.Journal)
	s.Firmware.SetScraper(s.Telemetry)

	for i := 0; ; i++ {
		cpa, err := s.Firmware.CPA(i)
		if err != nil {
			break
		}
		name := fmt.Sprintf("cpa%d", i)
		s.Telemetry.AddPlane(name, cpa.Plane)
		plane := cpa.Plane
		plane.SetParamObserver(func(ds core.DSID, pname string, old, new uint64) {
			s.Journal.Record(telemetry.Event{
				Kind:   telemetry.KindParamWrite,
				Origin: s.Firmware.Origin(),
				Plane:  name,
				DS:     ds,
				Name:   pname,
				Old:    old,
				New:    new,
			})
		})
	}

	s.Telemetry.AddGauge("prm.triggers_handled", func() float64 {
		return float64(s.Firmware.TriggersHandled)
	})
	s.Telemetry.AddGauge("prm.triggers_suppressed", func() float64 {
		return float64(s.Firmware.TriggersSuppressed)
	})
	s.Telemetry.AddGauge("prm.action_errors", func() float64 {
		return float64(s.Firmware.ActionErrors)
	})

	s.Telemetry.Start()
}

// CounterTracks converts every telemetry series into a Perfetto
// counter track for Recorder.WritePerfettoWith, so scraped plane
// statistics render time-axis-aligned under the packet spans. Returns
// nil when telemetry is disabled.
func (s *System) CounterTracks() []trace.CounterTrack {
	if s.Telemetry == nil {
		return nil
	}
	var tracks []trace.CounterTrack
	for _, ring := range s.Telemetry.Series() {
		ct := trace.CounterTrack{Name: ring.Name()}
		for i := 0; i < ring.Len(); i++ {
			sm := ring.At(i)
			ct.Points = append(ct.Points, trace.CounterPoint{Ts: sm.When, Value: sm.Value})
		}
		if len(ct.Points) > 0 {
			tracks = append(tracks, ct)
		}
	}
	return tracks
}

// ShardSeriesInto records a parallel rack's PDES runtime profiles into
// a registry as "pdes.shard<i>.*" gauge samples stamped at the group's
// current sim-time, plus group-level window counters. Call it between
// Run chunks (never while the group executes) to build per-shard series
// the ordinary export surfaces — /metrics, JSON dumps, Perfetto counter
// tracks — render like any other telemetry.
func ShardSeriesInto(reg *telemetry.Registry, g *sim.ShardGroup) {
	now := g.Now()
	rec := func(name string, v float64) {
		ring := reg.Find(name)
		if ring == nil {
			ring = reg.AddGauge(name, func() float64 { return 0 })
		}
		ring.Record(now, v)
	}
	for i := 0; i < g.NumShards(); i++ {
		p := g.Profile(i)
		base := fmt.Sprintf("pdes.shard%d.", i)
		rec(base+"events", float64(p.Events))
		rec(base+"active_windows", float64(p.ActiveWindows))
		rec(base+"cross_sends", float64(p.Sends))
		rec(base+"mailbox_peak", float64(p.MailboxPeak))
		rec(base+"run_ns", float64(p.RunNs))
		rec(base+"wait_ns", float64(p.WaitNs))
		if total := p.RunNs + p.WaitNs; total > 0 {
			rec(base+"barrier_wait_share", float64(p.WaitNs)/float64(total))
		}
	}
	rec("pdes.windows_run", float64(g.WindowsRun))
	rec("pdes.cross_sends", float64(g.CrossSends))
	rec("pdes.horizon_utilization", g.HorizonUtilization())
}
