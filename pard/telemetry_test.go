package pard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// telemetryEquivConfig is the rack-equivalence config with telemetry
// explicitly on or off.
func telemetryEquivConfig(disable bool) Config {
	cfg := equivConfig()
	cfg.Telemetry.Disable = disable
	return cfg
}

func rackDigestTelemetry(t *testing.T, n int, disable bool) string {
	t.Helper()
	rack := NewRack(telemetryEquivConfig(disable), n)
	if err := rack.ConnectRing(DefaultLinkLatency); err != nil {
		t.Fatal(err)
	}
	provisionEquivWorkload(t, rack.Servers)
	rack.Run(equivRun)
	return StateDigest(rack.Servers)
}

func parallelDigestTelemetry(t *testing.T, n, shards int, disable bool) string {
	t.Helper()
	pr := NewParallelRack(telemetryEquivConfig(disable), ParallelRackConfig{
		Servers: n, Shards: shards, Workers: shards,
	})
	if err := pr.ConnectRing(); err != nil {
		t.Fatal(err)
	}
	provisionEquivWorkload(t, pr.Servers)
	pr.Run(equivRun)
	return StateDigest(pr.Servers)
}

// TestTelemetryDigestInvariance is the acceptance gate: scraping and
// journaling must never perturb simulation state. For a 4-server rack,
// sequential and sharded 1/2/4 ways, the state digest with telemetry
// enabled must be byte-identical to the digest with telemetry disabled.
func TestTelemetryDigestInvariance(t *testing.T) {
	const n = 4
	want := rackDigestTelemetry(t, n, true)
	if got := rackDigestTelemetry(t, n, false); got != want {
		t.Errorf("sequential rack: telemetry perturbs state: %s", firstDiff(want, got))
	}
	for _, shards := range []int{1, 2, 4} {
		base := parallelDigestTelemetry(t, n, shards, true)
		if base != want {
			t.Fatalf("shards=%d baseline differs from sequential (pre-existing): %s", shards, firstDiff(want, base))
		}
		if got := parallelDigestTelemetry(t, n, shards, false); got != want {
			t.Errorf("shards=%d: telemetry perturbs state: %s", shards, firstDiff(want, got))
		}
	}
}

// exportAll renders every export surface of one server into a single
// byte string.
func exportAll(sys *System) string {
	var buf bytes.Buffer
	telemetry.WritePrometheus(&buf, sys.Telemetry, sys.Journal)
	telemetry.WriteSeriesJSON(&buf, sys.Telemetry, "")
	telemetry.WriteJournalJSON(&buf, sys.Telemetry, sys.Journal, 0, 0)
	buf.WriteString(telemetry.TopText(sys.Telemetry, ""))
	buf.WriteString(telemetry.JournalText(sys.Journal, 0))
	return buf.String()
}

// TestTelemetryExportDeterminism: a sequential rack's exported series
// and journal are byte-deterministic across repeated runs.
func TestTelemetryExportDeterminism(t *testing.T) {
	run := func() string {
		rack := NewRack(telemetryEquivConfig(false), 2)
		if err := rack.ConnectRing(DefaultLinkLatency); err != nil {
			t.Fatal(err)
		}
		provisionEquivWorkload(t, rack.Servers)
		rack.Run(equivRun)
		var b strings.Builder
		for _, s := range rack.Servers {
			b.WriteString(exportAll(s))
		}
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("exported telemetry differs across identical runs:\n" + firstDiff(a, b))
	}
	if !strings.Contains(a, "pard_scrapes_total") || !strings.Contains(a, "pard-journal/v1") {
		t.Fatal("export missing expected surfaces")
	}
}

// TestMonitorRidesScraper is the satellite-1 regression: with the
// telemetry registry wired, a prm.Monitor samples on scrape ticks, so
// its CSV rows and the registry's rings report identical values at
// identical sim-times, tick for tick.
func TestMonitorRidesScraper(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LLC.SizeBytes = 256 * 1024
	sys := NewSystem(cfg)
	if _, err := sys.CreateLDom(LDomConfig{Name: "svc", Cores: []int{0}, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	sys.RunWorkload(0, &workload.Stream{Base: 0, Footprint: 512 << 10, Compute: 4})

	const statPath = "/sys/cpa/cpa0/ldoms/ldom0/statistics/miss_rate"
	mon, err := sys.Firmware.StartMonitor("lat", cfg.SampleInterval, []string{statPath})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5 * Millisecond)

	ring := sys.Telemetry.Find("cpa0.ds0.miss_rate")
	if ring == nil {
		t.Fatal("no cpa0.ds0.miss_rate series")
	}
	csv := sys.Firmware.MustSh("cat /log/lat.csv")
	rows := strings.Split(strings.TrimSpace(csv), "\n")[1:] // drop header
	if len(rows) == 0 {
		t.Fatal("monitor recorded no rows")
	}
	if mon.Samples() != ring.Len() {
		t.Fatalf("monitor has %d rows, registry ring %d samples", mon.Samples(), ring.Len())
	}
	for i, row := range rows {
		parts := strings.SplitN(row, ",", 2)
		smp := ring.At(i)
		wantT := fmt.Sprintf("%d.%03d", uint64(smp.When/sim.Millisecond), uint64(smp.When%sim.Millisecond/sim.Microsecond))
		if parts[0] != wantT {
			t.Fatalf("row %d stamped %s, scrape was at %s", i, parts[0], wantT)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			t.Fatalf("row %d value %q: %v", i, parts[1], err)
		}
		if v != smp.Value {
			t.Fatalf("row %d: CSV %v vs ring %v at t=%d", i, v, smp.Value, smp.When)
		}
	}
}

const testReloadPolicy = `rule guard cpa llc ldom svc:
    when miss_rate > 30%
    => waymask = 0xff00, others waymask = 0x00ff
`

// newAPITestServer boots a small contended system, a console and the
// HTTP surface.
func newAPITestServer(t *testing.T, journalCap int) (*System, *Console, *httptest.Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.LLC.SizeBytes = 256 * 1024
	cfg.Telemetry.JournalCapacity = journalCap
	sys := NewSystem(cfg)
	if _, err := sys.CreateLDom(LDomConfig{Name: "svc", Cores: []int{0}, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateLDom(LDomConfig{Name: "bg", Cores: []int{1}}); err != nil {
		t.Fatal(err)
	}
	sys.RunWorkload(0, &workload.Stream{Base: 0, Footprint: 100 << 10, Compute: 4})
	sys.RunWorkload(1, &workload.CacheFlush{Base: 1 << 30, Footprint: 4 << 20, Seed: 1})
	sys.Run(2 * Millisecond)

	console, err := NewConsole(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { console.Close() })
	srv := httptest.NewServer(NewAPIHandler(sys, console))
	t.Cleanup(srv.Close)
	return sys, console, srv
}

func httpGet(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestAPIMetricsEndpoint lints the Prometheus exposition.
func TestAPIMetricsEndpoint(t *testing.T) {
	_, _, srv := newAPITestServer(t, 0)
	body, ctype := httpGet(t, srv.URL+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type %q", ctype)
	}
	families := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			families[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") || len(strings.Fields(line)) < 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	for _, want := range []string{"pard_series", "pard_scrapes_total", "pard_journal_events_total"} {
		if !families[want] {
			t.Fatalf("missing metric family %q in:\n%s", want, body)
		}
	}
	if !strings.Contains(body, `pard_series{name="cpa0.ds0.miss_rate"}`) {
		t.Fatal("plane stat series not exported")
	}
}

// TestAPISeriesEndpoint round-trips the pard-telemetry/v1 schema.
func TestAPISeriesEndpoint(t *testing.T) {
	sys, _, srv := newAPITestServer(t, 0)
	body, ctype := httpGet(t, srv.URL+"/api/v1/series?prefix=cpa0.")
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	var doc struct {
		Schema  string `json:"schema"`
		SimTime uint64 `json:"sim_time"`
		Series  []struct {
			Name    string `json:"name"`
			Samples []struct {
				T uint64  `json:"t"`
				V float64 `json:"v"`
			} `json:"samples"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Schema != "pard-telemetry/v1" || doc.SimTime != uint64(sys.Engine.Now()) {
		t.Fatalf("header %q t=%d", doc.Schema, doc.SimTime)
	}
	if len(doc.Series) == 0 {
		t.Fatal("no cpa0 series")
	}
	for _, s := range doc.Series {
		if !strings.HasPrefix(s.Name, "cpa0.") {
			t.Fatalf("prefix filter leaked %q", s.Name)
		}
		if len(s.Samples) == 0 {
			t.Fatalf("series %q has no samples", s.Name)
		}
	}
}

// TestAPIJournalEndpoint checks the bounded-journal truncation marker
// and the since/limit window.
func TestAPIJournalEndpoint(t *testing.T) {
	sys, _, srv := newAPITestServer(t, 4)
	if sys.Journal.Dropped() == 0 {
		t.Fatal("test premise broken: journal did not overflow at capacity 4")
	}
	body, _ := httpGet(t, srv.URL+"/api/v1/journal?since=0")
	var doc struct {
		Schema    string            `json:"schema"`
		NextSeq   uint64            `json:"next_seq"`
		Truncated bool              `json:"truncated"`
		Events    []telemetry.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "pard-journal/v1" || !doc.Truncated {
		t.Fatalf("since=0 on an overflowed journal must set truncated: %s", body)
	}
	if len(doc.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(doc.Events))
	}

	oldest := doc.Events[0].Seq
	body, _ = httpGet(t, srv.URL+fmt.Sprintf("/api/v1/journal?since=%d&limit=2", oldest))
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Truncated || len(doc.Events) != 2 || doc.Events[0].Seq != oldest {
		t.Fatalf("windowed request wrong: %s", body)
	}

	if resp, err := http.Get(srv.URL + "/api/v1/journal?since=bogus"); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad since returned %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestAPIConcurrentScrapeDuringReload hammers /metrics and the JSON
// endpoints from several goroutines while policy hot-reloads and sim
// advances run through the console executor. Run under -race by `make
// race`: the Console.Do serialization is the only thing standing
// between the HTTP handlers and the single-threaded simulation.
func TestAPIConcurrentScrapeDuringReload(t *testing.T) {
	sys, console, srv := newAPITestServer(t, 0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, path := range []string{"/metrics", "/api/v1/series", "/api/v1/journal"} {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					return // server shut down under us; fine
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(srv.URL + path)
	}

	for i := 0; i < 10; i++ {
		if err := console.Do(func() {
			if err := sys.ReloadPolicy("guard", testReloadPolicy); err != nil {
				t.Errorf("reload %d: %v", i, err)
			}
			sys.Run(100 * Microsecond)
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	var loads int
	for i := 0; i < sys.Journal.Len(); i++ {
		ev := sys.Journal.At(i)
		if ev.Kind == telemetry.KindPolicyLoad || ev.Kind == telemetry.KindPolicyReload {
			loads++
		}
	}
	if loads != 10 {
		t.Fatalf("journal saw %d policy loads, want 10", loads)
	}
}

// TestTelemetryDisabledSurfaces: with telemetry off, the console
// commands and HTTP endpoints degrade with clear errors, and the
// system carries no registry.
func TestTelemetryDisabledSurfaces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Telemetry.Disable = true
	sys := NewSystem(cfg)
	if sys.Telemetry != nil || sys.Journal != nil {
		t.Fatal("disabled telemetry still attached")
	}
	if _, err := Dispatch(sys, "telemetry"); err == nil {
		t.Fatal("telemetry command should fail when disabled")
	}
	console, err := NewConsole(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer console.Close()
	srv := httptest.NewServer(NewAPIHandler(sys, console))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disabled /metrics returned %d, want 503", resp.StatusCode)
	}
}

// TestConsoleTelemetryCommands smoke-tests the operator views.
func TestConsoleTelemetryCommands(t *testing.T) {
	sys, _, _ := newAPITestServer(t, 0)
	out, err := Dispatch(sys, "telemetry")
	if err != nil || !strings.Contains(out, "series") {
		t.Fatalf("telemetry: %q, %v", out, err)
	}
	out, err = Dispatch(sys, "top cpa0.")
	if err != nil || !strings.Contains(out, "cpa0.ds0.miss_rate") {
		t.Fatalf("top: %q, %v", out, err)
	}
	out, err = Dispatch(sys, "journal 5")
	if err != nil || !strings.Contains(out, "param_write") {
		t.Fatalf("journal: %q, %v", out, err)
	}
}
