package pard

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

// tracedSystem boots a two-LDom contention system with the flight
// recorder sampling every packet.
func tracedSystem(t *testing.T, crossbar bool) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Crossbar = crossbar
	cfg.TraceSample = 1
	sys := NewSystem(cfg)
	if _, err := sys.CreateLDom(LDomConfig{Name: "svc", Cores: []int{0}, MemBase: 0, Priority: 1, RowBuf: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateLDom(LDomConfig{Name: "batch", Cores: []int{1}, MemBase: 2 << 30}); err != nil {
		t.Fatal(err)
	}
	return sys
}

// Every sampled packet's life must decompose cleanly: the first hop
// starts at issue, spans are contiguous and internally ordered, the
// last hop ends at completion, and the per-hop queue+service splits sum
// exactly to the end-to-end latency.
func TestFlightRecorderSpanInvariants(t *testing.T) {
	sys := tracedSystem(t, true)
	sys.RunWorkload(0, NewSTREAM(0))
	sys.RunWorkload(1, &workload.CacheFlush{Base: 2 << 30, Footprint: 16 << 20, Seed: 2})
	sys.Run(2 * Millisecond)

	rec := sys.Recorder
	if rec == nil {
		t.Fatal("TraceSample=1 did not attach a recorder")
	}
	traces := rec.Traces()
	if rec.Finished() == 0 || len(traces) == 0 {
		t.Fatalf("no finished traces (finished=%d)", rec.Finished())
	}
	checked := 0
	for _, tr := range traces {
		spans := tr.Spans()
		if len(spans) == 0 {
			t.Fatalf("trace %d has no spans", tr.ID)
		}
		if tr.DSID != 0 && tr.DSID != 1 {
			t.Fatalf("trace %d has foreign DS-id %v", tr.ID, tr.DSID)
		}
		if spans[0].Enter != tr.Issue {
			t.Fatalf("trace %d: first hop enters at %v, issued at %v", tr.ID, spans[0].Enter, tr.Issue)
		}
		var sum Tick
		for i, s := range spans {
			if s.Enter > s.Service || s.Service > s.Done {
				t.Fatalf("trace %d hop %d (%s): enter %v / service %v / done %v out of order",
					tr.ID, i, rec.HopName(int(s.Hop)), s.Enter, s.Service, s.Done)
			}
			if i > 0 && spans[i-1].Done != s.Enter {
				t.Fatalf("trace %d: gap between hop %d done %v and hop %d enter %v",
					tr.ID, i-1, spans[i-1].Done, i, s.Enter)
			}
			sum += s.QueueWait() + s.ServiceTime()
		}
		if spans[len(spans)-1].Done != tr.End {
			t.Fatalf("trace %d: last hop done %v != end %v", tr.ID, spans[len(spans)-1].Done, tr.End)
		}
		if !tr.Truncated && sum != tr.End-tr.Issue {
			t.Fatalf("trace %d: hop sum %v != end-to-end %v", tr.ID, sum, tr.End-tr.Issue)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d traces checked; expected a busy 2ms window", checked)
	}
}

// The disk path (core -> bridge -> IDE) must produce spans too.
func TestFlightRecorderCoversDiskPath(t *testing.T) {
	sys := tracedSystem(t, false)
	sys.RunWorkload(0, &workload.DiskCopy{TotalBytes: 8 << 20, ChunkBytes: 64 << 10, Write: true, Loop: true, Compute: 200})
	sys.Run(2 * Millisecond)

	rec := sys.Recorder
	hopIdx := map[string]int{}
	for i, name := range rec.Hops() {
		hopIdx[name] = i
	}
	for _, name := range []string{"bridge", "ide"} {
		hop, ok := hopIdx[name]
		if !ok {
			t.Fatalf("hop %q not registered (hops: %v)", name, rec.Hops())
		}
		if rec.SpanCount(hop, 0) == 0 {
			t.Fatalf("no spans recorded at %q for ldom0 after 2ms of dd", name)
		}
	}
}

// The Perfetto export of a real two-LDom run: parseable, >0 complete
// spans, DS-id on every non-metadata event.
func TestFlightRecorderPerfettoExport(t *testing.T) {
	sys := tracedSystem(t, true)
	sys.RunWorkload(0, NewSTREAM(0))
	sys.RunWorkload(1, &workload.CacheFlush{Base: 2 << 30, Footprint: 16 << 20, Seed: 2})
	sys.Run(Millisecond)

	var buf bytes.Buffer
	n, err := sys.Recorder.WritePerfetto(&buf)
	if err != nil || n == 0 {
		t.Fatalf("WritePerfetto = %d, %v", n, err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	complete := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			continue
		}
		args, ok := ev["args"].(map[string]any)
		if !ok {
			t.Fatalf("event %v missing args", ev)
		}
		if _, ok := args["dsid"]; !ok {
			t.Fatalf("event %v missing args.dsid", ev)
		}
		if ev["ph"] == "X" {
			complete++
		}
	}
	if complete == 0 {
		t.Fatal("no complete (ph=X) hop spans in export")
	}
}

// Latency percentiles surface through the PRM device tree and are
// sampleable by prm.Monitor like any other statistic.
func TestLatencyStatFilesAndMonitor(t *testing.T) {
	sys := tracedSystem(t, false)
	sys.RunWorkload(0, NewSTREAM(0))
	sys.Run(2 * Millisecond)

	for _, path := range []string{
		"/sys/cpa/cpa0/ldoms/ldom0/statistics/lat_p50_queue",
		"/sys/cpa/cpa0/ldoms/ldom0/statistics/lat_p99_queue",
		"/sys/cpa/cpa0/ldoms/ldom0/statistics/lat_p50_service",
		"/sys/cpa/cpa0/ldoms/ldom0/statistics/lat_p99_service",
		"/sys/cpa/cpa1/ldoms/ldom0/statistics/lat_p99_queue",
		"/sys/cpa/cpa1/ldoms/ldom1/statistics/lat_p99_service",
	} {
		out, err := sys.Sh("cat " + path)
		if err != nil {
			t.Fatalf("cat %s: %v", path, err)
		}
		if _, err := strconv.ParseUint(out, 10, 64); err != nil {
			t.Fatalf("%s = %q, not an unsigned tick count", path, out)
		}
	}
	svc, _ := sys.Sh("cat /sys/cpa/cpa1/ldoms/ldom0/statistics/lat_p50_service")
	if v, _ := strconv.ParseUint(svc, 10, 64); v == 0 {
		t.Fatal("memory service p50 is 0 after 2ms of STREAM")
	}

	m, err := sys.Firmware.StartMonitor("lat", Millisecond, []string{
		"/sys/cpa/cpa1/ldoms/ldom0/statistics/lat_p50_service",
		"/sys/cpa/cpa0/ldoms/ldom0/statistics/lat_p99_queue",
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5 * Millisecond)
	if m.Samples() == 0 {
		t.Fatal("monitor took no samples of the latency files")
	}
	log, err := sys.Sh("cat /log/lat.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log, "lat_p50_service") {
		t.Fatalf("monitor header missing latency column:\n%s", log)
	}
}

// The console trace command dumps the per-hop breakdown table.
func TestConsoleTraceCommand(t *testing.T) {
	sys := tracedSystem(t, false)
	sys.RunWorkload(0, NewSTREAM(0))
	sys.Run(Millisecond)

	out, err := Dispatch(sys, "trace")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flight recorder", "queue-p50", "svc-p99", "mem", "llc", "ds0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}

	// Without either tracer the command must explain how to enable one.
	bare := NewSystem(DefaultConfig())
	if _, err := Dispatch(bare, "trace"); err == nil || !strings.Contains(err.Error(), "TraceSample") {
		t.Fatalf("expected enablement hint, got %v", err)
	}
}
