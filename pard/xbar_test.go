package pard

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestCrossbarDisabledByDefault(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	if sys.Xbar != nil {
		t.Fatal("crossbar present without opt-in")
	}
	if _, err := sys.Sh("cat /sys/cpa/cpa5/ident"); err == nil {
		t.Fatal("cpa5 mounted without a crossbar")
	}
}

func TestCrossbarMountsAsSixthPlane(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Crossbar = true
	sys := NewSystem(cfg)
	if sys.Xbar == nil {
		t.Fatal("crossbar missing")
	}
	ident := sys.Firmware.MustSh("cat /sys/cpa/cpa5/ident")
	if ident != "XBAR_CP" {
		t.Fatalf("cpa5 ident = %q", ident)
	}
}

func TestCrossbarCarriesLLCTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Crossbar = true
	sys := NewSystem(cfg)
	ld, _ := sys.CreateLDom(LDomConfig{Name: "a", Cores: []int{0}})
	sys.RunWorkload(0, NewSTREAM(0))
	sys.Run(2 * Millisecond)
	if sys.Xbar.Granted == 0 {
		t.Fatal("no packets crossed the crossbar")
	}
	fwd := sys.Firmware.MustSh("cat /sys/cpa/cpa5/ldoms/ldom0/statistics/fwd_cnt")
	if fwd == "0" {
		t.Fatal("crossbar control plane saw no traffic")
	}
	if sys.LLCOccupancyBytes(ld.DSID) == 0 {
		t.Fatal("traffic did not reach the LLC through the crossbar")
	}
}

func TestCrossbarWeightsThroughFileTree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Crossbar = true
	sys := NewSystem(cfg)
	sys.CreateLDom(LDomConfig{Name: "hi", Cores: []int{0}})
	sys.CreateLDom(LDomConfig{Name: "lo", Cores: []int{1}})
	sys.Firmware.MustSh("echo 4 > /sys/cpa/cpa5/ldoms/ldom0/parameters/weight")
	got := sys.Firmware.MustSh("cat /sys/cpa/cpa5/ldoms/ldom0/parameters/weight")
	if got != "4" {
		t.Fatalf("weight = %q", got)
	}
	sys.RunWorkload(0, &workload.CacheFlush{Base: 0, Footprint: 16 << 20, Seed: 1})
	sys.RunWorkload(1, &workload.CacheFlush{Base: 0, Footprint: 16 << 20, Seed: 2})
	sys.Run(2 * Millisecond)
	f0 := sys.Xbar.Plane().Stat(0, "fwd_cnt")
	f1 := sys.Xbar.Plane().Stat(1, "fwd_cnt")
	if f0 == 0 || f1 == 0 {
		t.Fatalf("fwd counts %d/%d", f0, f1)
	}
	// With blocking cores the single grant port is far from saturated,
	// so weights cannot skew throughput here; weighted arbitration
	// under saturation is covered by the xbar unit tests. This test
	// pins the end-to-end programmability path only.
}

func TestTable3StillListsFivePlanesByDefault(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	out := sys.Firmware.MustSh("ls /sys/cpa")
	if strings.Contains(out, "cpa5") {
		t.Fatal("default system grew a sixth plane")
	}
}
